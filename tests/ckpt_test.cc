/**
 * @file
 * Crash-atomic checkpointing and harvest-trace intermittent execution
 * (ISSUE 8).
 *
 * Covers the HarvestTrace/CapacitorModel energy math, the Trace fault
 * plan's determinism, the zero-uptime guards on the synthetic plans,
 * the torn-checkpoint crash-window matrix (a power failure at EVERY
 * cycle of __ckpt_commit must leave exactly the old or the new
 * checkpoint, never a blend), checkpointed convergence under both
 * cache runtimes, and the forward-progress guarantee: a harvest trace
 * whose per-boot energy can never finish the workload livelocks the
 * checkpoint-free build but converges under periodic-N commits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "sim/fault.hh"
#include "sim/harvest.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/platform.hh"
#include "swapram/builder.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

// ---- HarvestTrace / CapacitorModel ----

TEST(HarvestTrace, ParsesCsvAndIntegratesEnergy)
{
    auto trace = sim::HarvestTrace::parse(
        "# a comment\n"
        "0, 0.001\n"
        "\n"
        "0.5, 0.002\n"
        "1.0, 0\n",
        "inline");
    ASSERT_EQ(trace.points().size(), 3u);
    EXPECT_DOUBLE_EQ(trace.powerWatts(0.0), 0.001);
    EXPECT_DOUBLE_EQ(trace.powerWatts(0.4999), 0.001);
    EXPECT_DOUBLE_EQ(trace.powerWatts(0.5), 0.002);
    // The last point extends forever.
    EXPECT_DOUBLE_EQ(trace.powerWatts(100.0), 0.0);
    // 0.5s @ 1mW + 0.5s @ 2mW = 1.5 mJ = 1.5e9 pJ.
    EXPECT_NEAR(trace.energyPj(1.0), 1.5e9, 1.0);
    EXPECT_NEAR(trace.energyPj(10.0), 1.5e9, 1.0);
    EXPECT_NEAR(trace.energyPj(0.25), 0.25e9, 1.0);
}

TEST(HarvestTrace, RechargeTimeWalksTheProfile)
{
    // 1 mW inflow, 10 uW leak: net 990 uW. Refilling from brown-out
    // (20 uJ) to power-on (60 uJ) needs 40 uJ ~= 40.4 ms.
    auto trace = sim::HarvestTrace::fromPoints({{0.0, 1e-3}});
    sim::CapacitorModel cap;
    auto r = sim::rechargeTime(trace, cap, cap.brown_out_pj, 0.0);
    ASSERT_TRUE(r.reachable);
    EXPECT_NEAR(r.seconds, 40e-6 / (1e-3 - 10e-6), 1e-4);

    // Harvest below the leak can never recharge: exhausted.
    auto weak = sim::HarvestTrace::fromPoints({{0.0, 5e-6}});
    EXPECT_FALSE(
        sim::rechargeTime(weak, cap, cap.brown_out_pj, 0.0).reachable);

    // A later segment can still rescue a currently-dark harvest.
    auto delayed = sim::HarvestTrace::fromPoints({{0.0, 0.0},
                                                  {0.1, 1e-3}});
    auto d = sim::rechargeTime(delayed, cap, cap.brown_out_pj, 0.0);
    ASSERT_TRUE(d.reachable);
    EXPECT_GT(d.seconds, 0.1);
}

// ---- Zero-uptime guards on the synthetic plans ----

TEST(FaultPlan, RandomZeroGapStillAdvancesEveryBoot)
{
    // An all-zero gap range is rejected outright...
    EXPECT_THROW(sim::FaultInjector(sim::FaultPlan::random(0, 0, 42)),
                 support::FatalError);
    // ...and min_gap = 0 must not produce a zero-uptime boot: the
    // injector clamps every drawn gap to >= 1 cycle, so the failure
    // schedule is strictly increasing and a bounded plan terminates.
    sim::FaultInjector fi(sim::FaultPlan::random(0, 1, 42, 50));
    std::uint64_t prev = UINT64_MAX;
    std::uint64_t failures = 0;
    for (std::uint64_t cycle = 0; cycle < 1000 && failures < 50;
         ++cycle) {
        if (fi.shouldFail(cycle)) {
            if (prev != UINT64_MAX)
                EXPECT_GT(cycle, prev);
            prev = cycle;
            ++failures;
        }
    }
    EXPECT_EQ(failures, 50u);
    EXPECT_GT(fi.nextFailureCycle(), prev);
}

TEST(FaultPlan, PeriodicRejectsZeroPeriod)
{
    EXPECT_THROW(sim::FaultInjector fi(sim::FaultPlan::periodic(0)),
                 support::FatalError);
}

// ---- Torn-checkpoint crash-window matrix ----

/** A workload whose FRAM-visible result depends on call order, built
 *  as a SwapRAM binary with a tiny captured SRAM window so the commit
 *  copy is short enough to fault at every single cycle. */
struct TornRig {
    cache::BuildInfo info;
    std::uint16_t stack_top = 0x2200;

    std::unique_ptr<sim::Machine>
    makeMachine(bool superblock = true) const
    {
        sim::MachineConfig config;
        config.superblock_enabled = superblock;
        auto m = std::make_unique<sim::Machine>(config);
        m->load(info.assembled.image, stack_top);
        m->addOwnerRange(info.handler_addr, info.handler_end,
                         sim::CodeOwner::Handler);
        m->addOwnerRange(info.memcpy_addr, info.memcpy_end,
                         sim::CodeOwner::Memcpy);
        m->addOwnerRange(info.ckpt_addr, info.ckpt_end,
                         sim::CodeOwner::Handler);
        m->setRecoveryRange(info.recover_addr, info.recover_end);
        return m;
    }

    std::uint16_t
    peekSym(const sim::Machine &m, const char *sym) const
    {
        return m.peek16(info.assembled.symbol(sym));
    }
};

TornRig
buildTornRig()
{
    // Stack in [0x2100, 0x2200), cache in [0x2000, 0x2100), checkpoint
    // capturing exactly that 512-byte window. .text/.data stay in FRAM
    // (the default layout), so the checkpoint also carries the FRAM
    // .data segment.
    const char *body = R"(
        .text
        .func main
        CALL #f_add
        CALL #f_mix
        CALL #f_add
        MOV &acc, R12
        MOV R12, &bench_result
        RET
        .endfunc
        .func f_add
        ADD #0x111, &acc
        RET
        .endfunc
        .func f_mix
        XOR #0x3C5A, &acc
        ADD #7, &acc
        RET
        .endfunc
        .data
        .align 2
acc: .word 0x1000
bench_result: .word 0
)";
    TornRig rig;
    cache::Options opt;
    opt.cache_base = 0x2000;
    opt.cache_end = 0x2100;
    opt.ckpt.scheme = ckpt::Scheme::Periodic;
    opt.ckpt.period = 1; // commit on every miss
    opt.ckpt.sram_end = 0x2200;
    std::string source =
        harness::startupSource(rig.stack_top, 1, "__swp_recover") +
        body;
    rig.info = cache::build(masm::parse(source), masm::LayoutSpec{},
                            opt);
    EXPECT_GT(rig.info.ckpt_end, rig.info.ckpt_addr);
    return rig;
}

TEST(TornCheckpoint, FaultAtEveryCommitCycleNeverBlends)
{
    TornRig rig = buildTornRig();

    // Pass 1 (single-step oracle): record the total-cycle stamp of
    // every instruction retired inside __ckpt_commit, for every commit
    // invocation — the first seals buffer 0 cold, later ones alternate
    // while the other buffer holds a valid older snapshot.
    auto probe = rig.makeMachine(/*superblock=*/false);
    std::vector<std::uint64_t> window;
    const std::uint16_t commit = rig.info.assembled.symbol(
        "__ckpt_commit");
    const std::uint16_t commit_end = rig.info.assembled.symbol(
        "__ckpt_restore"); // routines are emitted back to back
    while (!probe->mmio().done()) {
        std::uint16_t pc = probe->cpu().pc();
        if (pc >= commit && pc < commit_end)
            window.push_back(probe->stats().totalCycles());
        probe->step();
        ASSERT_LT(probe->stats().totalCycles(), 200'000u)
            << "probe run did not terminate";
    }
    const std::uint16_t want = rig.peekSym(*probe, "bench_result");
    const std::uint16_t commits = rig.peekSym(*probe, "__ckpt_ncommit");
    ASSERT_GE(commits, 3u); // main, f_add, f_mix each missed once
    ASSERT_GT(window.size(), 100u);

    // Pass 2: power-fail at every cycle stamp inside the commit
    // routine (plus a margin past each end — the seal and the RET).
    std::set<std::uint64_t> cycles(window.begin(), window.end());
    for (std::uint64_t c : window) {
        cycles.insert(c + 1);
        cycles.insert(c + 2);
    }
    int checked = 0;
    for (std::uint64_t c : cycles) {
        auto m = rig.makeMachine();
        sim::FaultInjector fi(sim::FaultPlan::once(c));
        m->setFaultInjector(&fi);
        auto r = m->run();
        ASSERT_TRUE(r.done) << "fault cycle " << c;
        // The final state must be exactly the uninterrupted result:
        // recovery restored a whole checkpoint (old or new), never a
        // mix of the two buffers.
        EXPECT_EQ(rig.peekSym(*m, "bench_result"), want)
            << "fault cycle " << c;
        if (m->stats().reboots) {
            // A crash inside commit always reboots into a restore:
            // at least buffer 0's cold commit completed first... or
            // nothing was sealed yet, in which case the cold path
            // simply reruns from main. Either way the counters stay
            // coherent.
            std::uint16_t n_commit = rig.peekSym(*m, "__ckpt_ncommit");
            std::uint16_t n_restore = rig.peekSym(*m,
                                                  "__ckpt_nrestore");
            // A fault between the magic seal and the INC of the
            // counter leaves a valid checkpoint whose resume skips
            // the increment, so ncommit may undercount by one.
            EXPECT_GE(n_commit + 1u, commits) << "fault cycle " << c;
            EXPECT_LE(n_restore, 1u) << "fault cycle " << c;
        }
        ++checked;
    }
    // The window spans the full metadata + SRAM + .data copy of at
    // least three separate commits.
    EXPECT_GT(checked, 100);
}

// ---- Checkpointed convergence at the harness level ----

harness::RunSpec
ckptSpec(harness::System system, ckpt::Scheme scheme, int period = 1)
{
    static workloads::Workload arith = workloads::makeArith();
    harness::RunSpec spec;
    spec.workload = &arith;
    spec.system = system;
    spec.placement = harness::Placement::Standard;
    // A 1 KiB SRAM keeps the commit copy short (~5k cycles); with the
    // full 4 KiB capture a commit outlasts the fault periods below and
    // every snapshot is torn — correctly, but the convergence tests
    // want sealed checkpoints to restore from.
    spec.sram_size = 1024;
    for (ckpt::Options *o : {&spec.swap.ckpt, &spec.block.ckpt}) {
        o->scheme = scheme;
        o->period = period;
    }
    return spec;
}

TEST(Checkpoint, SwapRamConvergesUnderPeriodicCommits)
{
    auto spec = ckptSpec(harness::System::SwapRam,
                         ckpt::Scheme::Periodic);
    spec.intermittent.plan = sim::FaultPlan::periodic(12'000, 6);
    auto check = harness::checkIntermittent(spec);
    EXPECT_TRUE(check.matchState());
    EXPECT_EQ(check.faulted.stats.reboots, 6u);
    EXPECT_GT(check.faulted.rt_ckpt_commits, 0u);
    EXPECT_GT(check.faulted.rt_ckpt_restores, 0u);
    // The uninterrupted twin commits but never restores.
    EXPECT_GT(check.reference.rt_ckpt_commits, 0u);
    EXPECT_EQ(check.reference.rt_ckpt_restores, 0u);
}

TEST(Checkpoint, BlockCacheConvergesUnderPeriodicCommits)
{
    auto spec = ckptSpec(harness::System::BlockCache,
                         ckpt::Scheme::Periodic);
    spec.intermittent.plan = sim::FaultPlan::periodic(12'000, 6);
    auto check = harness::checkIntermittent(spec);
    EXPECT_TRUE(check.matchState());
    EXPECT_EQ(check.faulted.stats.reboots, 6u);
    EXPECT_GT(check.faulted.rt_ckpt_commits, 0u);
    EXPECT_GT(check.faulted.rt_ckpt_restores, 0u);
}

TEST(Checkpoint, SchemeNoneMatchesThePreCheckpointBuild)
{
    // ckpt scheme none must generate byte-for-byte the pre-checkpoint
    // runtime: same cycles, checksum, and sizes as a spec that never
    // mentions checkpointing.
    auto base = ckptSpec(harness::System::SwapRam, ckpt::Scheme::None);
    harness::RunSpec plain = base;
    plain.swap.ckpt = ckpt::Options{};
    plain.block.ckpt = ckpt::Options{};
    auto a = harness::runOne(base);
    auto b = harness::runOne(plain);
    ASSERT_TRUE(a.done && b.done);
    EXPECT_EQ(a.stats.totalCycles(), b.stats.totalCycles());
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.text_bytes, b.text_bytes);
    EXPECT_EQ(a.metadata_bytes, b.metadata_bytes);
    EXPECT_EQ(a.data_snapshot, b.data_snapshot);
    EXPECT_EQ(a.rt_ckpt_commits, 0u);
}

TEST(Checkpoint, FramStackPlacementIsRejected)
{
    auto spec = ckptSpec(harness::System::SwapRam,
                         ckpt::Scheme::Periodic);
    spec.placement = harness::Placement::Unified; // FRAM stack
    EXPECT_THROW(harness::runOne(spec), support::FatalError);

    auto no_rec = ckptSpec(harness::System::SwapRam,
                           ckpt::Scheme::Periodic);
    no_rec.swap.boot_recovery = false;
    EXPECT_THROW(harness::runOne(no_rec), support::FatalError);
}

// ---- Harvest-trace runs: determinism, exhaustion, livelock ----

/** A workload big enough that a small per-boot energy budget cannot
 *  finish it, with a call-heavy inner loop whose functions overflow a
 *  1 KiB SRAM so the miss handler (and the periodic commit hook) keeps
 *  firing for the whole run. */
workloads::Workload
thrashWorkload()
{
    auto func = [](const char *name, const char *op) {
        std::string s = "        .func " + std::string(name) + "\n";
        for (int i = 0; i < 70; ++i)
            s += "        " + std::string(op) + "\n";
        s += "        RET\n        .endfunc\n";
        return s;
    };
    workloads::Workload w;
    w.name = "ckpt_thrash";
    w.display = w.name;
    w.source =
        "        .text\n"
        "        .func main\n"
        "        MOV #120, R10\n"
        "loop:\n"
        "        CALL #f_one\n"
        "        CALL #f_two\n"
        "        CALL #f_three\n"
        "        DEC R10\n"
        "        JNZ loop\n"
        "        MOV &acc, R12\n"
        "        MOV R12, &bench_result\n"
        "        RET\n"
        "        .endfunc\n" +
        func("f_one", "ADD #3, &acc") +
        func("f_two", "XOR #0x1248, &acc") +
        func("f_three", "ADD #1, &acc") +
        "        .data\n        .align 2\n"
        "acc: .word 0\n"
        "bench_result: .word 0\n";
    return w;
}

/** Spec for the thrash workload on SwapRAM at 1 KiB SRAM. */
harness::RunSpec
thrashSpec(const workloads::Workload &w, ckpt::Scheme scheme)
{
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.placement = harness::Placement::Standard;
    spec.sram_size = 1024;
    spec.include_lib = false;
    for (ckpt::Options *o : {&spec.swap.ckpt, &spec.block.ckpt}) {
        o->scheme = scheme;
        o->period = 4;
        // capFor() puts the brown-out at ~60% and the power-on at
        // ~80% of capacity; the low-energy commit must trigger in
        // between (the default 25% would never be reached).
        o->low_threshold = 0xB000;
    }
    return spec;
}

/** Capacitor sized from the workload's uninterrupted energy so each
 *  boot gets roughly 1/@p divisor of the run. */
sim::CapacitorModel
capFor(double run_pj, double divisor)
{
    sim::CapacitorModel cap;
    cap.brown_out_pj = run_pj / 4;
    cap.power_on_pj = cap.brown_out_pj + run_pj / divisor;
    cap.capacity_pj = cap.power_on_pj * 1.25;
    cap.initial_pj = cap.power_on_pj; // first boot like any other
    cap.leak_watts = 1e-6;
    return cap;
}

TEST(Harvest, PeriodicCheckpointsConvergeWhereNoneLivelocks)
{
    workloads::Workload w = thrashWorkload();

    // Reference: the checkpointed build, uninterrupted.
    auto ref_spec = thrashSpec(w, ckpt::Scheme::Periodic);
    auto ref = harness::runOne(ref_spec);
    ASSERT_TRUE(ref.fits) << ref.fit_note;
    ASSERT_TRUE(ref.done);
    ASSERT_GT(ref.rt_ckpt_commits, 10u)
        << "the thrash loop should commit throughout the run";

    // A steady but weak harvest: ~1/12 of the run's energy per boot,
    // trickle-charged at 50 uW between boots.
    auto trace = std::make_shared<sim::HarvestTrace>(
        sim::HarvestTrace::fromPoints({{0.0, 50e-6}}));
    sim::CapacitorModel cap = capFor(ref.energy_pj, 12.0);

    // Without checkpoints every boot replays the same prefix and the
    // watchdog calls it: no forward progress.
    auto none_spec = thrashSpec(w, ckpt::Scheme::None);
    none_spec.intermittent.plan = sim::FaultPlan::harvest(trace, cap);
    none_spec.intermittent.livelock_boots = 6;
    auto none = harness::runOne(none_spec);
    ASSERT_TRUE(none.fits) << none.fit_note;
    EXPECT_FALSE(none.done);
    EXPECT_EQ(none.stop, sim::RunResult::Stop::Livelock);
    EXPECT_GE(none.stats.reboots, 4u);

    // With periodic commits the same harvest converges to the
    // uninterrupted result.
    auto ckpt_spec = thrashSpec(w, ckpt::Scheme::Periodic);
    ckpt_spec.intermittent.plan = sim::FaultPlan::harvest(trace, cap);
    ckpt_spec.intermittent.livelock_boots = 6;
    auto got = harness::runOne(ckpt_spec);
    ASSERT_TRUE(got.fits) << got.fit_note;
    ASSERT_TRUE(got.done)
        << "stop=" << static_cast<int>(got.stop)
        << " reboots=" << got.stats.reboots;
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.data_snapshot, ref.data_snapshot);
    EXPECT_GT(got.stats.reboots, 3u);
    EXPECT_GT(got.rt_ckpt_restores, 0u);
    // Harvest accounting flows into the metrics.
    EXPECT_GT(got.harvested_pj, 0.0);
    EXPECT_GT(got.wall_seconds, 0.0);
}

TEST(Harvest, PeriodKOrbitIsDetectedAsLivelock)
{
    // crc_big warms its working set early, so commits cluster at the
    // front of the run; under a small budget the run restores the
    // last checkpoint every boot and orbits a small set of persistent
    // states (the recovery walk alternates pool slots) without ever
    // repeating the SAME state twice in a row. The watchdog must
    // recognise "no NEW state" rather than "identical state".
    const workloads::Workload *w = workloads::find("crc_big");
    ASSERT_NE(w, nullptr);

    harness::RunSpec ref_spec;
    ref_spec.workload = w;
    ref_spec.system = harness::System::SwapRam;
    ref_spec.placement = harness::Placement::Standard;
    ref_spec.sram_size = 1024;
    for (ckpt::Options *o : {&ref_spec.swap.ckpt, &ref_spec.block.ckpt}) {
        o->scheme = ckpt::Scheme::Periodic;
        o->period = 8;
    }
    auto ref = harness::runOne(ref_spec);
    ASSERT_TRUE(ref.fits) << ref.fit_note;
    ASSERT_TRUE(ref.done);

    auto trace = std::make_shared<sim::HarvestTrace>(
        sim::HarvestTrace::fromPoints({{0.0, 50e-6}}));
    auto spec = ref_spec;
    spec.intermittent.plan =
        sim::FaultPlan::harvest(trace, capFor(ref.energy_pj, 7.0));
    spec.intermittent.livelock_boots = 8;
    auto got = harness::runOne(spec);
    ASSERT_TRUE(got.fits) << got.fit_note;
    EXPECT_FALSE(got.done);
    EXPECT_EQ(got.stop, sim::RunResult::Stop::Livelock)
        << "reboots=" << got.stats.reboots;
    // The orbit is a stalled checkpoint cycle, not a cold replay: it
    // sealed at least one commit and then kept restoring it.
    EXPECT_GE(got.rt_ckpt_commits, 1u);
    EXPECT_GT(got.rt_ckpt_restores, got.rt_ckpt_commits);
}

TEST(Harvest, TraceRunsAreDeterministic)
{
    workloads::Workload w = thrashWorkload();
    auto ref = harness::runOne(thrashSpec(w, ckpt::Scheme::Periodic));
    ASSERT_TRUE(ref.done);

    auto trace = std::make_shared<sim::HarvestTrace>(
        sim::HarvestTrace::fromPoints({{0.0, 50e-6}}));
    sim::CapacitorModel cap = capFor(ref.energy_pj, 12.0);

    auto make = [&](bool superblock) {
        auto spec = thrashSpec(w, ckpt::Scheme::Periodic);
        spec.intermittent.plan = sim::FaultPlan::harvest(trace, cap);
        spec.superblock = superblock;
        return harness::runOne(spec);
    };
    auto a = make(true);
    auto b = make(true);
    EXPECT_EQ(a.stats.reboots, b.stats.reboots);
    EXPECT_EQ(a.stats.totalCycles(), b.stats.totalCycles());
    EXPECT_EQ(a.harvested_pj, b.harvested_pj);
    EXPECT_EQ(a.wall_seconds, b.wall_seconds);

    // The superblock engine only evaluates the injector at block
    // boundaries; the brown-outs must still land on the same cycles
    // as the single-step oracle.
    auto c = make(false);
    EXPECT_EQ(a.stats.reboots, c.stats.reboots);
    EXPECT_EQ(a.stats.totalCycles(), c.stats.totalCycles());
    EXPECT_EQ(a.checksum, c.checksum);
    EXPECT_EQ(a.harvested_pj, c.harvested_pj);
}

TEST(Harvest, SubLeakageHarvestExhausts)
{
    workloads::Workload w = thrashWorkload();
    auto ref = harness::runOne(thrashSpec(w, ckpt::Scheme::Periodic));
    ASSERT_TRUE(ref.done);

    // Inflow below the parasitic leak: after the first brown-out the
    // capacitor can never reach the power-on threshold again.
    auto trace = std::make_shared<sim::HarvestTrace>(
        sim::HarvestTrace::fromPoints({{0.0, 0.5e-6}}));
    sim::CapacitorModel cap = capFor(ref.energy_pj, 12.0);

    auto spec = thrashSpec(w, ckpt::Scheme::Periodic);
    spec.intermittent.plan = sim::FaultPlan::harvest(trace, cap);
    auto got = harness::runOne(spec);
    ASSERT_TRUE(got.fits) << got.fit_note;
    EXPECT_FALSE(got.done);
    EXPECT_EQ(got.stop, sim::RunResult::Stop::Exhausted);
    // Exhaustion is detected at the brown-out, before any reboot.
    EXPECT_EQ(got.stats.reboots, 0u);
}

TEST(Harvest, OnLowEnergyCommitsOncePerEpisode)
{
    workloads::Workload w = thrashWorkload();
    auto ref_spec = thrashSpec(w, ckpt::Scheme::OnLowEnergy);
    auto ref = harness::runOne(ref_spec);
    ASSERT_TRUE(ref.done);
    // Mains-powered (levelWord = 0xFFFF): never below the threshold,
    // so the hysteresis latch never fires.
    EXPECT_EQ(ref.rt_ckpt_commits, 0u);

    auto trace = std::make_shared<sim::HarvestTrace>(
        sim::HarvestTrace::fromPoints({{0.0, 50e-6}}));
    sim::CapacitorModel cap = capFor(ref.energy_pj, 12.0);

    auto spec = thrashSpec(w, ckpt::Scheme::OnLowEnergy);
    spec.intermittent.plan = sim::FaultPlan::harvest(trace, cap);
    spec.intermittent.livelock_boots = 8;
    auto got = harness::runOne(spec);
    ASSERT_TRUE(got.fits) << got.fit_note;
    ASSERT_TRUE(got.done)
        << "stop=" << static_cast<int>(got.stop)
        << " reboots=" << got.stats.reboots;
    EXPECT_EQ(got.checksum, ref.checksum);
    EXPECT_EQ(got.data_snapshot, ref.data_snapshot);
    EXPECT_GT(got.rt_ckpt_commits, 0u);
    EXPECT_GT(got.rt_ckpt_restores, 0u);
    // One commit per draining episode, not one per miss: far fewer
    // commits than the periodic scheme would make over this many
    // reboots.
    EXPECT_LE(got.rt_ckpt_commits,
              static_cast<std::uint16_t>(2 * got.stats.reboots + 2));
}

} // namespace
