/**
 * @file
 * White-box tests of the generated SwapRAM runtime: the metadata
 * protocol of Figures 4/5 — redirect cells flipping between the miss
 * handler and SRAM copies, cached-address bookkeeping, circular-queue
 * tail movement and wrap, and relocation cells being set on caching
 * and reset on eviction.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"
#include "support/platform.hh"
#include "swapram/builder.hh"

namespace {

using namespace swapram;

struct Built {
    cache::BuildInfo info;
    std::unique_ptr<sim::Machine> machine;

    std::uint16_t
    cell(const std::string &table, int func_id) const
    {
        return machine->peek16(static_cast<std::uint16_t>(
            info.assembled.symbol(table) + 2 * func_id));
    }
    int
    funcId(const std::string &name) const
    {
        return info.funcs.ids.at(name);
    }
};

Built
buildAndRun(const std::string &body, cache::Options opt)
{
    std::string source = harness::startupSource(0xFF80) + body;
    Built b;
    b.info = cache::build(masm::parse(source), masm::LayoutSpec{}, opt);
    b.machine = std::make_unique<sim::Machine>();
    b.machine->load(b.info.assembled.image, 0xFF80);
    b.machine->addOwnerRange(b.info.handler_addr, b.info.handler_end,
                             sim::CodeOwner::Handler);
    b.machine->addOwnerRange(b.info.memcpy_addr, b.info.memcpy_end,
                             sim::CodeOwner::Memcpy);
    auto r = b.machine->run();
    EXPECT_TRUE(r.done);
    return b;
}

const char *kSmall = R"(
        .text
        .func main
        CALL #f_a
        CALL #f_b
        MOV &acc, R12
        MOV R12, &bench_result
        RET
        .endfunc
        .func f_a
        ADD #5, &acc
        RET
        .endfunc
        .func f_b
        XOR #0x77, &acc
        RET
        .endfunc
        .data
        .align 2
acc: .word 0
bench_result: .word 0
)";

TEST(SwapRamRuntime, RedirectCellsPointAtSramCopies)
{
    cache::Options opt; // full 4 KiB cache: nothing evicts
    auto b = buildAndRun(kSmall, opt);

    std::uint16_t miss = b.info.assembled.symbol("__swp_miss");
    for (const char *name : {"main", "f_a", "f_b"}) {
        int id = b.funcId(name);
        std::uint16_t cached = b.cell("__swp_cached", id);
        std::uint16_t redirect = b.cell("__swp_redirect", id);
        EXPECT_NE(cached, 0xFFFF) << name;
        EXPECT_GE(cached, platform::kSramBase) << name;
        EXPECT_LT(cached, platform::kSramEnd) << name;
        EXPECT_EQ(redirect, cached) << name;
        EXPECT_NE(redirect, miss) << name;
    }
    // __start was never called: still a miss-handler redirect.
    int start_id = b.funcId("__start");
    EXPECT_EQ(b.cell("__swp_cached", start_id), 0xFFFF);
    EXPECT_EQ(b.cell("__swp_redirect", start_id), miss);
}

TEST(SwapRamRuntime, QueuePacksFunctionsContiguously)
{
    cache::Options opt;
    auto b = buildAndRun(kSmall, opt);
    // Call order main, f_a, f_b: consecutive placements from the base.
    std::uint16_t main_at = b.cell("__swp_cached", b.funcId("main"));
    std::uint16_t fa_at = b.cell("__swp_cached", b.funcId("f_a"));
    std::uint16_t fb_at = b.cell("__swp_cached", b.funcId("f_b"));
    EXPECT_EQ(main_at, platform::kSramBase);
    std::uint16_t main_size =
        b.info.assembled.function("main").size;
    EXPECT_EQ(fa_at, main_at + main_size);
    std::uint16_t fa_size = b.info.assembled.function("f_a").size;
    EXPECT_EQ(fb_at, fa_at + fa_size);
    // Tail sits right after the last placement.
    std::uint16_t tail =
        b.machine->peek16(b.info.assembled.symbol("__swp_tail"));
    std::uint16_t fb_size = b.info.assembled.function("f_b").size;
    EXPECT_EQ(tail, fb_at + fb_size);
}

TEST(SwapRamRuntime, SramCopyMatchesNvmBytes)
{
    cache::Options opt;
    auto b = buildAndRun(kSmall, opt);
    const auto &f = b.info.assembled.function("f_a");
    std::uint16_t copy = b.cell("__swp_cached", b.funcId("f_a"));
    for (std::uint16_t i = 0; i < f.size; ++i) {
        EXPECT_EQ(b.machine->peek8(static_cast<std::uint16_t>(copy + i)),
                  b.machine->peek8(static_cast<std::uint16_t>(f.addr + i)))
            << "byte " << i;
    }
}

TEST(SwapRamRuntime, EvictionResetsMetadata)
{
    // Cache sized so f_a and f_b cannot coexist with main blacklisted;
    // calling them alternately evicts the other.
    const char *body = R"(
        .text
        .func main
        PUSH R10
        MOV #5, R10
ml:     CALL #f_a
        CALL #f_b
        DEC R10
        JNZ ml
        MOV &acc, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
        .func f_a
        ADD #5, &acc
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        RET
        .endfunc
        .func f_b
        XOR #0x77, &acc
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        RET
        .endfunc
        .data
        .align 2
acc: .word 0
bench_result: .word 0
)";
    cache::Options opt;
    opt.blacklist = {"main", "__start"};
    opt.cache_base = 0x2000;
    opt.cache_end = 0x2020; // 32 B: fits one of the ~26 B functions
    auto b = buildAndRun(body, opt);

    // The last call was f_b: it is cached; f_a was evicted.
    std::uint16_t miss = b.info.assembled.symbol("__swp_miss");
    EXPECT_EQ(b.cell("__swp_cached", b.funcId("f_a")), 0xFFFF);
    EXPECT_EQ(b.cell("__swp_redirect", b.funcId("f_a")), miss);
    EXPECT_NE(b.cell("__swp_cached", b.funcId("f_b")), 0xFFFF);
    // Both went through many misses: the handler ran repeatedly.
    EXPECT_GT(b.machine->stats().instr_by_owner[int(
                  sim::CodeOwner::Memcpy)],
              50u);
}

TEST(SwapRamRuntime, RelocationCellsTrackResidency)
{
    // f_br contains an absolute branch; its rval cell must hold the
    // SRAM target while cached and the NVM target after eviction.
    const char *body = R"(
        .text
        .func main
        PUSH R10
        MOV #3, R10
ml:     CALL #f_br
        CALL #f_other
        DEC R10
        JNZ ml
        MOV &acc, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
        .func f_br
        BIT #1, &acc
        JZ fb_skip
        BR #fb_skip
fb_skip:
        ADD #9, &acc
        NOP
        NOP
        NOP
        NOP
        RET
        .endfunc
        .func f_other
        XOR #0x101, &acc
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        RET
        .endfunc
        .data
        .align 2
acc: .word 0
bench_result: .word 0
)";
    cache::Options opt;
    opt.blacklist = {"main", "__start"};
    opt.cache_base = 0x2000;
    opt.cache_end = 0x2028; // fits one function at a time
    auto b = buildAndRun(body, opt);
    ASSERT_EQ(b.info.reloc_count, 1);

    // After the run, f_other was called last: f_br is evicted, so its
    // reloc value must be back at the NVM target (inside f_br's NVM
    // image).
    std::uint16_t rval =
        b.machine->peek16(b.info.assembled.symbol("__swp_rval"));
    const auto &f = b.info.assembled.function("f_br");
    EXPECT_EQ(b.cell("__swp_cached", b.funcId("f_br")), 0xFFFF);
    EXPECT_GE(rval, f.addr);
    EXPECT_LT(rval, f.addr + f.size);
}

TEST(SwapRamRuntime, TailWrapsCircularly)
{
    // Several functions cycled through a cache that holds ~2 of them:
    // the tail must wrap back toward the base at least once and stay
    // inside the cache region.
    const char *body = R"(
        .text
        .func main
        PUSH R10
        MOV #4, R10
ml:     CALL #g1
        CALL #g2
        CALL #g3
        DEC R10
        JNZ ml
        MOV &acc, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
)";
    std::string src = body;
    for (int g = 1; g <= 3; ++g) {
        src += "        .func g" + std::to_string(g) + "\n";
        src += "        ADD #" + std::to_string(g) + ", &acc\n";
        for (int i = 0; i < 6; ++i)
            src += "        NOP\n";
        src += "        RET\n        .endfunc\n";
    }
    src += "        .data\n        .align 2\n"
           "acc: .word 0\nbench_result: .word 0\n";

    cache::Options opt;
    opt.blacklist = {"main", "__start"};
    opt.cache_base = 0x2000;
    opt.cache_end = 0x2030; // 48 B: about two of the ~20 B functions
    auto b = buildAndRun(src, opt);
    std::uint16_t tail =
        b.machine->peek16(b.info.assembled.symbol("__swp_tail"));
    EXPECT_GE(tail, opt.cache_base);
    EXPECT_LE(tail, opt.cache_end);
    // All three cached at least once (memcpy ran well beyond 3 copies).
    EXPECT_GT(b.machine->stats().instr_by_owner[int(
                  sim::CodeOwner::Memcpy)],
              100u);
    EXPECT_EQ(b.machine->peek16(
                  b.info.assembled.symbol("bench_result")),
              4 * (1 + 2 + 3));
}

} // namespace
