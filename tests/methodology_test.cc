/**
 * @file
 * Tests for the paper's measurement methodology (§4): each benchmark
 * is run several times in one session so the common case — after
 * SwapRAM has populated the cache — dominates. The first call pays the
 * cold misses; later calls hit warm redirect cells.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

harness::Metrics
runRepeats(const workloads::Workload &w, harness::System system,
           int repeats)
{
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = system;
    spec.main_repeats = repeats;
    return harness::runOne(spec);
}

TEST(Methodology, RepeatsAmortizeColdMisses)
{
    auto w = workloads::makeCrc();
    auto base1 = runRepeats(w, harness::System::Baseline, 1);
    auto swap1 = runRepeats(w, harness::System::SwapRam, 1);
    auto base10 = runRepeats(w, harness::System::Baseline, 10);
    auto swap10 = runRepeats(w, harness::System::SwapRam, 10);
    ASSERT_TRUE(base1.done && swap1.done && base10.done && swap10.done);

    double cold = static_cast<double>(base1.stats.totalCycles()) /
                  static_cast<double>(swap1.stats.totalCycles());
    double warm = static_cast<double>(base10.stats.totalCycles()) /
                  static_cast<double>(swap10.stats.totalCycles());
    // Steady-state speedup is at least the cold-start speedup.
    EXPECT_GE(warm, cold * 0.999);

    // The handler only runs during the first iteration's misses: its
    // instruction share in the 10x run is under 10x the 1x share.
    auto handler1 =
        swap1.stats.instr_by_owner[int(sim::CodeOwner::Handler)];
    auto handler10 =
        swap10.stats.instr_by_owner[int(sim::CodeOwner::Handler)];
    EXPECT_EQ(handler1, handler10); // no new misses after warm-up
}

TEST(Methodology, RepeatedRunsAgreeAcrossSystems)
{
    // With repeats the checksum differs from the single-run golden
    // (stateful benchmarks chain), but all systems must still agree.
    for (const char *name : {"rc4", "crc", "bitcount"}) {
        const auto *w = workloads::find(name);
        auto base = runRepeats(*w, harness::System::Baseline, 3);
        auto swap = runRepeats(*w, harness::System::SwapRam, 3);
        auto block = runRepeats(*w, harness::System::BlockCache, 3);
        ASSERT_TRUE(base.done && swap.done && block.done) << name;
        EXPECT_EQ(base.checksum, swap.checksum) << name;
        EXPECT_EQ(base.data_snapshot, swap.data_snapshot) << name;
        if (block.fits) {
            EXPECT_EQ(base.checksum, block.checksum) << name;
            EXPECT_EQ(base.data_snapshot, block.data_snapshot) << name;
        }
    }
}

TEST(Methodology, StartupStubShapes)
{
    auto one = harness::startupSource(0x3000, 1);
    EXPECT_EQ(one.find("__start_loop"), std::string::npos);
    auto ten = harness::startupSource(0x3000, 10);
    EXPECT_NE(ten.find("__start_loop"), std::string::npos);
    EXPECT_NE(ten.find("#10, R10"), std::string::npos);
}

} // namespace
