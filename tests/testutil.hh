/**
 * @file
 * Shared helpers for unit tests: assemble a snippet, run it on a
 * machine, and expose the pieces for inspection.
 */

#ifndef SWAPRAM_TESTS_TESTUTIL_HH
#define SWAPRAM_TESTS_TESTUTIL_HH

#include <memory>
#include <string>

#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"

namespace swapram::test {

/** An assembled-and-executed snippet. */
struct MiniRun {
    masm::AssembleResult assembled;
    std::unique_ptr<sim::Machine> machine;
    sim::RunResult result;

    std::uint16_t reg(isa::Reg r) { return machine->cpu().reg(r); }
    const sim::Stats &stats() const { return machine->stats(); }
};

/** Wrap a body in a standard startup that halts via __DONE. The body
 *  starts executing directly with SP = 0x3000. */
inline std::string
wrapBody(const std::string &body)
{
    return "        .text\n"
           "__start:\n"
           "        MOV #0x3000, SP\n" +
           body +
           "\n        MOV.B #0, &__DONE\n"
           "__halt: JMP __halt\n";
}

/** Assemble full source and run it. Data sections default to SRAM. */
inline MiniRun
runSource(const std::string &source, sim::MachineConfig config = {},
          masm::LayoutSpec layout = {})
{
    if (!layout.data_base)
        layout.data_base = 0x2000;
    MiniRun run;
    run.assembled = masm::assemble(masm::parse(source), layout);
    run.machine = std::make_unique<sim::Machine>(config);
    run.machine->load(run.assembled.image, 0x3000);
    run.result = run.machine->run();
    return run;
}

/** Wrap @p body with the standard prologue and run it. */
inline MiniRun
runBody(const std::string &body, sim::MachineConfig config = {},
        masm::LayoutSpec layout = {})
{
    return runSource(wrapBody(body), config, layout);
}

} // namespace swapram::test

#endif // SWAPRAM_TESTS_TESTUTIL_HH
