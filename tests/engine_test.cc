/**
 * @file
 * Harness engine tests: deterministic submission-order results at any
 * worker count, per-run error capture, and byte-identical serialized
 * reports between sequential (--jobs 1) and parallel (--jobs 8)
 * execution of the same batch — the property the sweep tool and CI
 * rely on.
 */

#include <gtest/gtest.h>

#include "harness/engine.hh"
#include "harness/report.hh"
#include "sim/fault.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using harness::Engine;
using harness::RunOutcome;
using harness::RunSpec;
using harness::System;

const workloads::Workload &
workload(const std::string &name)
{
    const workloads::Workload *w = workloads::find(name);
    if (!w)
        support::fatal("test workload missing: ", name);
    return *w;
}

/** A batch mixing systems, a faulted run, and an intentional failure. */
std::vector<RunSpec>
mixedBatch()
{
    std::vector<RunSpec> specs;
    specs.push_back(harness::sweepSpec(workload("crc"), System::Baseline));
    specs.push_back(harness::sweepSpec(workload("crc"), System::SwapRam));
    specs.push_back(
        harness::sweepSpec(workload("bitcount"), System::BlockCache));

    // A power-cycled run: schedule depends only on the spec, so it is
    // as deterministic as a clean run. Bounded so the final boot
    // completes (unbounded 40k budgets would livelock this workload).
    RunSpec faulted =
        harness::sweepSpec(workload("rc4"), System::SwapRam);
    faulted.intermittent.plan = sim::FaultPlan::periodic(40'000, 8);
    specs.push_back(faulted);

    specs.push_back(harness::sweepSpec(workload("aes"), System::SwapRam));
    return specs;
}

/** Serialize a batch the way the sweep tool does: one JSON blob. */
std::string
serialize(const std::vector<RunSpec> &specs,
          const std::vector<RunOutcome> &outcomes)
{
    std::string out;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (outcomes[i].error) {
            out += "error: " + outcomes[i].error_text + "\n";
            continue;
        }
        out += harness::RunReport::make(specs[i], outcomes[i].metrics)
                   .json()
                   .dump(2);
        out += "\n";
    }
    return out;
}

TEST(Engine, ResultsArriveInSubmissionOrder)
{
    std::vector<RunSpec> specs = mixedBatch();
    std::vector<RunOutcome> outcomes = Engine(8).runAll(specs);
    ASSERT_EQ(outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error_text;
        // Identity check: result i really is spec i's workload.
        EXPECT_EQ(outcomes[i].metrics.checksum,
                  harness::runOne(specs[i]).checksum)
            << "index " << i;
    }
}

TEST(Engine, SequentialAndParallelBatchesAreByteIdentical)
{
    std::vector<RunSpec> specs = mixedBatch();
    std::vector<RunOutcome> seq = Engine(1).runAll(specs);
    std::vector<RunOutcome> par = Engine(8).runAll(specs);
    // Byte-for-byte on the serialized reports, not just checksums:
    // this is the exact guarantee `sweep --jobs N` gives CI.
    EXPECT_EQ(serialize(specs, seq), serialize(specs, par));
}

TEST(Engine, RepeatedParallelBatchesAreByteIdentical)
{
    std::vector<RunSpec> specs = mixedBatch();
    Engine engine(8);
    std::string first = serialize(specs, engine.runAll(specs));
    std::string second = serialize(specs, engine.runAll(specs));
    EXPECT_EQ(first, second);
}

TEST(Engine, ErrorsAreCapturedPerRunWithoutPoisoningTheBatch)
{
    std::vector<RunSpec> specs;
    specs.push_back(harness::sweepSpec(workload("crc"), System::Baseline));

    RunSpec bad; // null workload: runOne() raises a fatal error
    specs.push_back(bad);

    specs.push_back(
        harness::sweepSpec(workload("bitcount"), System::SwapRam));

    std::vector<RunOutcome> outcomes = Engine(4).runAll(specs);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_FALSE(outcomes[1].error_text.empty());
    EXPECT_TRUE(outcomes[2].ok());

    // runAllOrThrow surfaces the first failure by submission order.
    EXPECT_THROW(Engine(4).runAllOrThrow(specs), support::FatalError);
}

TEST(Engine, JobCountDefaultsAndClamps)
{
    EXPECT_GE(Engine::defaultJobs(), 1u);
    EXPECT_EQ(Engine(0).jobs(), Engine::defaultJobs());
    EXPECT_EQ(Engine(3).jobs(), 3u);
    EXPECT_TRUE(Engine(16).runAll({}).empty());
}

} // namespace
