/**
 * @file
 * Lexer unit tests.
 */

#include <gtest/gtest.h>

#include "masm/lexer.hh"
#include "support/logging.hh"

namespace {

using namespace swapram;
using masm::lexLine;
using masm::TokKind;

TEST(Lexer, BasicInstructionLine)
{
    auto toks = lexLine("loop:   MOV #0x10, R5   ; comment", 1);
    ASSERT_EQ(toks.size(), 8u); // loop : MOV # 0x10 , R5 END
    EXPECT_EQ(toks[0].kind, TokKind::Ident);
    EXPECT_EQ(toks[0].text, "loop");
    EXPECT_TRUE(toks[1].isPunct(":"));
    EXPECT_EQ(toks[2].text, "MOV");
    EXPECT_TRUE(toks[3].isPunct("#"));
    EXPECT_EQ(toks[4].kind, TokKind::Number);
    EXPECT_EQ(toks[4].number, 0x10);
    EXPECT_TRUE(toks[5].isPunct(","));
    EXPECT_EQ(toks[6].text, "R5");
    EXPECT_EQ(toks[7].kind, TokKind::End);
}

TEST(Lexer, NumberFormats)
{
    auto toks = lexLine("1234 0xABCD 0b1010 'A' '\\n'", 1);
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[0].number, 1234);
    EXPECT_EQ(toks[1].number, 0xABCD);
    EXPECT_EQ(toks[2].number, 10);
    EXPECT_EQ(toks[3].number, 'A');
    EXPECT_EQ(toks[4].number, '\n');
}

TEST(Lexer, Strings)
{
    auto toks = lexLine(".asciz \"hi\\tthere\\0\"", 1);
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(toks[0].text, ".asciz");
    EXPECT_EQ(toks[1].kind, TokKind::String);
    EXPECT_EQ(toks[1].text, std::string("hi\tthere\0", 9));
}

TEST(Lexer, ShiftOperators)
{
    auto toks = lexLine("1<<4 8>>2", 1);
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_TRUE(toks[1].isPunct("<<"));
    EXPECT_TRUE(toks[4].isPunct(">>"));
}

TEST(Lexer, IndirectAndIndexed)
{
    auto toks = lexLine("MOV @R4+, 2(R5)", 1);
    // MOV @ R4 + , 2 ( R5 ) END
    ASSERT_EQ(toks.size(), 10u);
    EXPECT_TRUE(toks[1].isPunct("@"));
    EXPECT_TRUE(toks[3].isPunct("+"));
    EXPECT_TRUE(toks[6].isPunct("("));
    EXPECT_TRUE(toks[8].isPunct(")"));
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(lexLine("0xZZ", 1), support::FatalError);
    EXPECT_THROW(lexLine("\"unterminated", 1), support::FatalError);
    EXPECT_THROW(lexLine("'a", 1), support::FatalError);
    EXPECT_THROW(lexLine("12abc", 1), support::FatalError);
    EXPECT_THROW(lexLine("MOV ?", 1), support::FatalError);
}

TEST(Lexer, CommentOnly)
{
    auto toks = lexLine("   ; nothing here", 7);
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokKind::End);
}

} // namespace
