/**
 * @file
 * Tests for the thrash-mitigation extension (§5.4 future work): when
 * misses repeatedly abort against an active caller — the paper's
 * §3.3.3 pathological case — the runtime freezes the cache and serves
 * misses from NVM without the full eviction scan.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "swapram/builder.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

/** hot() loops calling leaf(); hot is padded so the cache fits hot but
 *  never hot+leaf — every leaf call must try to evict its own active
 *  caller and abort. */
workloads::Workload
pathologicalWorkload()
{
    std::ostringstream os;
    os << R"(
        .text
        .func main
        CALL #hot
        MOV &pw_acc, R12
        MOV R12, &bench_result
        RET
        .endfunc
        .func hot
        PUSH R10
        MOV #300, R10
pw_loop:
        CALL #leaf
        DEC R10
        JNZ pw_loop
        POP R10
        RET
        ; dead padding: inflates hot's cached footprint only
)";
    for (int i = 0; i < 100; ++i)
        os << "        NOP\n";
    os << R"(
        .endfunc
        .func leaf
        ADD #3, &pw_acc
        RET
        .endfunc
        .data
        .align 2
pw_acc: .word 0
bench_result: .word 0
)";
    workloads::Workload w;
    w.name = "pathological";
    w.display = "PATH";
    w.source = os.str();
    w.expected = 900;
    return w;
}

harness::RunSpec
thrashSpec(const workloads::Workload &w)
{
    // Size the cache to hot's instrumented footprint plus a sliver, so
    // leaf can never be placed without overlapping hot.
    std::string source = harness::startupSource(0xFF80) + w.source;
    auto program = masm::parse(source);
    cache::Options probe;
    probe.blacklist = {"main", "__start"};
    auto info = cache::build(program, masm::LayoutSpec{}, probe);
    std::uint16_t hot_size = info.assembled.function("hot").size;

    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.include_lib = false;
    spec.swap.blacklist = {"main", "__start"};
    spec.swap.cache_base = 0x2000;
    spec.swap.cache_end =
        static_cast<std::uint16_t>(0x2000 + ((hot_size + 4) & ~1));
    return spec;
}

TEST(SwapRamFreeze, PathologicalCaseThrashesWithoutFreeze)
{
    auto w = pathologicalWorkload();
    auto spec = thrashSpec(w);
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // Every leaf call runs the full miss handler: its share is large.
    auto handler =
        m.stats.instr_by_owner[int(sim::CodeOwner::Handler)];
    EXPECT_GT(handler, m.stats.instructions / 3);
    // And leaf executes from FRAM (the abort fallback).
    EXPECT_GT(m.stats.instr_by_owner[int(sim::CodeOwner::AppFram)], 0u);
}

TEST(SwapRamFreeze, FreezeReducesThrashCost)
{
    auto w = pathologicalWorkload();
    auto base_spec = thrashSpec(w);
    auto thrash = harness::runOne(base_spec);

    auto frozen_spec = base_spec;
    frozen_spec.swap.freeze_threshold = 3;
    frozen_spec.swap.freeze_window = 32;
    auto frozen = harness::runOne(frozen_spec);

    ASSERT_TRUE(thrash.done && frozen.done);
    EXPECT_EQ(frozen.checksum, w.expected);
    // Same results, markedly fewer cycles and handler instructions.
    EXPECT_LT(frozen.stats.totalCycles(),
              thrash.stats.totalCycles() * 8 / 10);
    EXPECT_LT(frozen.stats.instr_by_owner[int(sim::CodeOwner::Handler)],
              thrash.stats.instr_by_owner[int(sim::CodeOwner::Handler)]);
    EXPECT_EQ(frozen.data_snapshot, thrash.data_snapshot);
}

TEST(SwapRamFreeze, FreezeIsHarmlessOnHealthyWorkloads)
{
    // With no thrash, freezing never triggers: identical results and
    // near-identical cost on a normal benchmark.
    auto w = workloads::makeCrc();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    auto plain = harness::runOne(spec);
    spec.swap.freeze_threshold = 3;
    auto frozen = harness::runOne(spec);
    ASSERT_TRUE(plain.done && frozen.done);
    EXPECT_EQ(plain.checksum, frozen.checksum);
    EXPECT_EQ(plain.data_snapshot, frozen.data_snapshot);
    // Only the handler's size changes slightly; dynamic cost within 1%.
    double ratio = static_cast<double>(frozen.stats.totalCycles()) /
                   static_cast<double>(plain.stats.totalCycles());
    EXPECT_GT(ratio, 0.99);
    EXPECT_LT(ratio, 1.01);
}

TEST(SwapRamFreeze, UnfreezesAndRecachesLater)
{
    // After the pathological phase ends, a frozen cache must recover:
    // main later calls leaf in a loop with hot inactive — leaf should
    // get cached again and run from SRAM.
    const char *source = R"(
        .text
        .func main
        PUSH R10
        CALL #hot
        MOV #200, R10
pm_loop:
        CALL #leaf
        DEC R10
        JNZ pm_loop
        MOV &pw_acc, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
        .func hot
        PUSH R10
        MOV #100, R10
ph_loop:
        CALL #leaf
        DEC R10
        JNZ ph_loop
        POP R10
        RET
)";
    std::ostringstream os;
    os << source;
    for (int i = 0; i < 100; ++i)
        os << "        NOP\n";
    os << R"(
        .endfunc
        .func leaf
        ADD #3, &pw_acc
        RET
        .endfunc
        .data
        .align 2
pw_acc: .word 0
bench_result: .word 0
)";
    workloads::Workload w;
    w.name = "recover";
    w.display = "REC";
    w.source = os.str();
    w.expected = 900;

    auto spec = thrashSpec(w);
    spec.workload = &w;
    spec.swap.freeze_threshold = 3;
    spec.swap.freeze_window = 16;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // The post-thrash phase runs leaf from SRAM.
    EXPECT_GT(m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)],
              200u);
}

} // namespace
