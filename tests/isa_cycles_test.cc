/**
 * @file
 * Cycle-table unit tests against the classic MSP430 instruction timing
 * (SLAU144-style): format I by src/dst mode, format II, jumps.
 */

#include <gtest/gtest.h>

#include "isa/cycles.hh"

namespace {

using namespace swapram;
using isa::Instr;
using isa::Op;
using isa::Operand;
using isa::Reg;

std::uint32_t
cyc1(Op op, Operand src, Operand dst)
{
    Instr i;
    i.op = op;
    i.src = src;
    i.dst = dst;
    return isa::baseCycles(i);
}

std::uint32_t
cyc2(Op op, Operand dst)
{
    Instr i;
    i.op = op;
    i.dst = dst;
    return isa::baseCycles(i);
}

TEST(Cycles, FormatIRegisterSource)
{
    auto r5 = Operand::makeReg(Reg::R5);
    auto r6 = Operand::makeReg(Reg::R6);
    auto pc = Operand::makeReg(Reg::PC);
    EXPECT_EQ(cyc1(Op::Mov, r5, r6), 1u);
    EXPECT_EQ(cyc1(Op::Mov, r5, pc), 2u); // BR R5
    EXPECT_EQ(cyc1(Op::Add, r5, Operand::makeIndexed(Reg::R6, 2)), 4u);
    EXPECT_EQ(cyc1(Op::Add, r5, Operand::makeAbs(0x2000)), 4u);
}

TEST(Cycles, FormatIConstantGeneratorCountsAsRegister)
{
    auto r6 = Operand::makeReg(Reg::R6);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeImm(1), r6), 1u);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeImm(8), r6), 1u);
    // Non-CG immediate behaves like @PC+.
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeImm(0x1234), r6), 2u);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeImm(1, true), r6), 2u);
}

TEST(Cycles, FormatIIndirectSource)
{
    auto r6 = Operand::makeReg(Reg::R6);
    auto pc = Operand::makeReg(Reg::PC);
    EXPECT_EQ(cyc1(Op::Add, Operand::makeIndirect(Reg::R5, false), r6),
              2u);
    EXPECT_EQ(cyc1(Op::Add, Operand::makeIndirect(Reg::R5, true), r6), 2u);
    // RET == MOV @SP+, PC -> 3 cycles.
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeIndirect(Reg::SP, true), pc), 3u);
    // BR #imm == MOV #imm, PC -> 3 cycles.
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeImm(0x9000, true), pc), 3u);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeIndirect(Reg::R5, false),
                   Operand::makeAbs(0x2000)),
              5u);
}

TEST(Cycles, FormatIMemorySource)
{
    auto r6 = Operand::makeReg(Reg::R6);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeIndexed(Reg::R5, 4), r6), 3u);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeAbs(0x2000), r6), 3u);
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeSymbolic(0x9000), r6), 3u);
    // MOV &a, &b -> 6 cycles.
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeAbs(0x2000),
                   Operand::makeAbs(0x2002)),
              6u);
    // MOV &cell, PC (SwapRAM's relocated branch) -> 4 cycles.
    EXPECT_EQ(cyc1(Op::Mov, Operand::makeAbs(0x2000),
                   Operand::makeReg(Reg::PC)),
              4u);
}

TEST(Cycles, FormatII)
{
    EXPECT_EQ(cyc2(Op::Rra, Operand::makeReg(Reg::R5)), 1u);
    EXPECT_EQ(cyc2(Op::Rra, Operand::makeIndirect(Reg::R5, false)), 3u);
    EXPECT_EQ(cyc2(Op::Rra, Operand::makeAbs(0x2000)), 4u);
    EXPECT_EQ(cyc2(Op::Push, Operand::makeReg(Reg::R5)), 3u);
    EXPECT_EQ(cyc2(Op::Push, Operand::makeImm(0x1234, true)), 4u);
    EXPECT_EQ(cyc2(Op::Call, Operand::makeReg(Reg::R5)), 4u);
    EXPECT_EQ(cyc2(Op::Call, Operand::makeImm(0x9000, true)), 5u);
    EXPECT_EQ(cyc2(Op::Call, Operand::makeAbs(0x8100)), 6u);
    Instr reti;
    reti.op = Op::Reti;
    EXPECT_EQ(isa::baseCycles(reti), 5u);
}

TEST(Cycles, JumpsAlwaysTwo)
{
    for (Op op : {Op::Jne, Op::Jeq, Op::Jnc, Op::Jc, Op::Jn, Op::Jge,
                  Op::Jl, Op::Jmp}) {
        Instr i;
        i.op = op;
        i.jump_target = 0x8004;
        EXPECT_EQ(isa::baseCycles(i), 2u);
    }
}

} // namespace
