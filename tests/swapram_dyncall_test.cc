/**
 * @file
 * Tests for the dynamic-call interface (§4 future work): jump-table
 * style dispatch through `__swp_dyncall`, which lets indirect calls
 * participate in SwapRAM caching (the paper had to rewrite bitcount's
 * jump table into a switch because static call targets are required).
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

/** Dispatch through a function-id table: ops[i & 3] applied to an
 *  accumulator, like bitcount's original function-pointer table. */
const char *kDispatchSource = R"(
        .text
        .func main
        PUSH R10
        PUSH R9
        CLR R9                   ; accumulator
        MOV #64, R10
dm_loop:
        ; R11 = table[(i & 3)] — a runtime function id
        MOV R10, R13
        AND #3, R13
        RLA R13
        MOV dm_table(R13), R11
        MOV R9, R12
        CALL #__swp_dyncall
        MOV R12, R9
        DEC R10
        JNZ dm_loop
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc

        .func op_add
        ADD #17, R12
        RET
        .endfunc
        .func op_xor
        XOR #0x2C3D, R12
        RET
        .endfunc
        .func op_rot
        RLA R12
        ADC R12
        RET
        .endfunc
        .func op_sub
        SUB #5, R12
        RET
        .endfunc

        .const
        .align 2
dm_table:
        .word __swp_id_op_add, __swp_id_op_xor
        .word __swp_id_op_rot, __swp_id_op_sub
        .data
        .align 2
bench_result: .word 0
)";

std::uint16_t
golden()
{
    std::uint16_t acc = 0;
    for (int i = 64; i >= 1; --i) {
        switch (i & 3) {
          case 0:
            acc = static_cast<std::uint16_t>(acc + 17);
            break;
          case 1:
            acc ^= 0x2C3D;
            break;
          case 2:
            acc = static_cast<std::uint16_t>((acc << 1) | (acc >> 15));
            break;
          default:
            acc = static_cast<std::uint16_t>(acc - 5);
            break;
        }
    }
    return acc;
}

TEST(SwapRamDynCall, DispatchTableExecutesAndCaches)
{
    workloads::Workload w;
    w.name = "dyndispatch";
    w.display = "DYN";
    w.source = kDispatchSource;
    w.expected = golden();

    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.include_lib = false;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.fits) << m.fit_note;
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // The dispatched ops get cached: application code runs from SRAM
    // (what remains in FRAM is the trampoline/handler runtime).
    EXPECT_LT(m.stats.instr_by_owner[int(sim::CodeOwner::AppFram)],
              m.stats.instructions / 10);
    EXPECT_GT(m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)],
              m.stats.instructions / 4);
}

TEST(SwapRamDynCall, WorksUnderEvictionPressure)
{
    workloads::Workload w;
    w.name = "dyndispatch";
    w.display = "DYN";
    w.source = kDispatchSource;
    w.expected = golden();

    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.include_lib = false;
    spec.swap.cache_base = 0x2000;
    spec.swap.cache_end = 0x2020; // 32 B: ops evict each other
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
}

TEST(SwapRamDynCall, RecursionThroughDynCall)
{
    const char *source = R"(
        .text
        .func main
        MOV #10, R12
        MOV #__swp_id_rcount, R11
        CALL #__swp_dyncall
        MOV R12, &bench_result
        RET
        .endfunc
        .func rcount
        TST R12
        JNZ rc_rec
        RET
rc_rec: PUSH R10
        MOV R12, R10
        DEC R12
        MOV #__swp_id_rcount, R11
        CALL #__swp_dyncall
        ADD R10, R12
        POP R10
        RET
        .endfunc
        .data
        .align 2
bench_result: .word 0
)";
    workloads::Workload w;
    w.name = "dynrec";
    w.display = "DYNR";
    w.source = source;
    w.expected = 55;

    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.include_lib = false;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, 55);
}

} // namespace
