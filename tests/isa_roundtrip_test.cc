/**
 * @file
 * ISA round-trip property test (ISSUE 2 satellite): for every opcode x
 * addressing-mode row, encode -> disasm -> reparse -> reassemble must
 * reproduce the original words exactly. This pins the disassembler's
 * "text form compatible with the masm parser" contract that the
 * binary re-import flow (masm/reimport.cc) depends on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "masm/assembler.hh"
#include "masm/parser.hh"

namespace {

using namespace swapram;
using isa::Instr;
using isa::Mode;
using isa::Op;
using isa::Operand;
using isa::Reg;

/** Every instruction is placed at the default text base so symbolic
 *  (PC-relative) extension words and jump offsets line up between the
 *  direct encoding and the reassembled image. */
constexpr std::uint16_t kAddr = 0x8000;

std::vector<std::uint16_t>
reassemble(const std::string &text)
{
    std::string source = "        .text\n        " + text + "\n";
    auto assembled = masm::assemble(masm::parse(source), {});
    std::vector<std::uint16_t> words;
    for (const masm::Chunk &chunk : assembled.image.chunks) {
        if (chunk.base != kAddr)
            continue;
        for (std::size_t i = 0; i + 1 < chunk.bytes.size(); i += 2) {
            std::uint16_t lo = chunk.bytes[i];
            std::uint16_t hi = chunk.bytes[i + 1];
            words.push_back(static_cast<std::uint16_t>(lo | (hi << 8)));
        }
    }
    return words;
}

void
expectRoundTrip(const Instr &instr)
{
    std::vector<std::uint16_t> direct = isa::encode(instr, kAddr);
    std::string text = isa::disasm(instr);
    std::vector<std::uint16_t> rebuilt = reassemble(text);
    EXPECT_EQ(direct, rebuilt) << "round trip of '" << text << "'";
}

Instr
fmt1(Op op, Operand src, Operand dst, bool byte = false)
{
    Instr i;
    i.op = op;
    i.byte = byte;
    i.src = src;
    i.dst = dst;
    return i;
}

Instr
fmt2(Op op, Operand dst, bool byte = false)
{
    Instr i;
    i.op = op;
    i.byte = byte;
    i.dst = dst;
    return i;
}

/** Source-operand samples covering all seven modes, the constant
 *  generator values, and a plain extension-word immediate. */
std::vector<Operand>
srcSamples(bool byte_op)
{
    std::vector<Operand> ops = {
        Operand::makeReg(Reg::R7),
        Operand::makeReg(Reg::SP),
        Operand::makeIndexed(Reg::R6, 0x0010),
        Operand::makeSymbolic(0x9ABC),
        Operand::makeAbs(0x2222),
        Operand::makeIndirect(Reg::R9, false),
        Operand::makeIndirect(Reg::R10, true),
        Operand::makeImm(0),      // CG: R3/As=00
        Operand::makeImm(1),      // CG: R3/As=01
        Operand::makeImm(2),      // CG: R3/As=10
        Operand::makeImm(4),      // CG: SR/As=10
        Operand::makeImm(8),      // CG: SR/As=11
        Operand::makeImm(0xFFFF), // CG: R3/As=11
    };
    // A non-CG immediate needs an extension word; keep it a byte-range
    // value when the operation is .B so the operand stays well-formed.
    ops.push_back(Operand::makeImm(byte_op ? 0x003F : 0x1234));
    if (byte_op)
        ops.push_back(Operand::makeImm(0xFF)); // CG only for byte ops
    return ops;
}

/** Destination samples: the four legal destination modes. */
std::vector<Operand>
dstSamples()
{
    return {
        Operand::makeReg(Reg::R12),
        Operand::makeIndexed(Reg::R5, 0x0008),
        Operand::makeSymbolic(0x8888),
        Operand::makeAbs(0x2004),
    };
}

TEST(IsaRoundTrip, DoubleOperandAllModes)
{
    const Op ops[] = {Op::Mov, Op::Add, Op::Addc, Op::Subc,
                      Op::Sub, Op::Cmp, Op::Dadd, Op::Bit,
                      Op::Bic, Op::Bis, Op::Xor,  Op::And};
    for (Op op : ops)
        for (const Operand &src : srcSamples(false))
            for (const Operand &dst : dstSamples())
                expectRoundTrip(fmt1(op, src, dst));
}

TEST(IsaRoundTrip, DoubleOperandByteForms)
{
    const Op ops[] = {Op::Mov, Op::Add, Op::Addc, Op::Subc,
                      Op::Sub, Op::Cmp, Op::Dadd, Op::Bit,
                      Op::Bic, Op::Bis, Op::Xor,  Op::And};
    for (Op op : ops) {
        if (!isa::supportsByte(op))
            continue;
        for (const Operand &src : srcSamples(true))
            for (const Operand &dst : dstSamples())
                expectRoundTrip(fmt1(op, src, dst, true));
    }
}

TEST(IsaRoundTrip, SingleOperandAllModes)
{
    const Op ops[] = {Op::Rrc, Op::Swpb, Op::Rra,
                      Op::Sxt, Op::Push, Op::Call};
    for (Op op : ops) {
        std::vector<Operand> dsts = {
            Operand::makeReg(Reg::R11),
            Operand::makeIndexed(Reg::R8, 0x0006),
            Operand::makeSymbolic(0x8100),
            Operand::makeAbs(0x2008),
            Operand::makeIndirect(Reg::R13, false),
            Operand::makeIndirect(Reg::R14, true),
        };
        if (op == Op::Push || op == Op::Call) {
            dsts.push_back(Operand::makeImm(0x1234));
            dsts.push_back(Operand::makeImm(4)); // CG form
        }
        for (const Operand &dst : dsts) {
            expectRoundTrip(fmt2(op, dst));
            if (isa::supportsByte(op) && dst.mode != Mode::Immediate)
                expectRoundTrip(fmt2(op, dst, true));
        }
    }
}

TEST(IsaRoundTrip, Reti)
{
    Instr i;
    i.op = Op::Reti;
    expectRoundTrip(i);
}

TEST(IsaRoundTrip, JumpsAcrossTheirFullRange)
{
    const Op ops[] = {Op::Jne, Op::Jeq, Op::Jnc, Op::Jc,
                      Op::Jn,  Op::Jge, Op::Jl,  Op::Jmp};
    // Extremes and interior points of the +/-512-word reach.
    const std::uint16_t targets[] = {
        static_cast<std::uint16_t>(kAddr + isa::kJumpMaxBackward),
        kAddr - 0x0100, kAddr, kAddr + 2, kAddr + 0x0200,
        static_cast<std::uint16_t>(kAddr + isa::kJumpMaxForward)};
    for (Op op : ops) {
        for (std::uint16_t target : targets) {
            Instr i;
            i.op = op;
            i.jump_target = target;
            expectRoundTrip(i);
        }
    }
}

} // namespace
