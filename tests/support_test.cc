/**
 * @file
 * Unit tests for the support utilities, the disassembler, the listing
 * printer, the report helpers, and the placement planner.
 */

#include <gtest/gtest.h>

#include "harness/placement.hh"
#include "harness/runner.hh"
#include "harness/report.hh"
#include "isa/disasm.hh"
#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "masm/printer.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace {

using namespace swapram;

TEST(Strings, Trim)
{
    EXPECT_EQ(support::trim("  abc  "), "abc");
    EXPECT_EQ(support::trim(""), "");
    EXPECT_EQ(support::trim("   "), "");
    EXPECT_EQ(support::trim("x"), "x");
}

TEST(Strings, Case)
{
    EXPECT_EQ(support::toLower("MoV.B"), "mov.b");
    EXPECT_EQ(support::toUpper("r12"), "R12");
}

TEST(Strings, Split)
{
    auto parts = support::split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(support::split("", ',').size(), 1u);
}

TEST(Strings, Hex16AndFixed)
{
    EXPECT_EQ(support::hex16(0xBEEF), "0xBEEF");
    EXPECT_EQ(support::hex16(0), "0x0000");
    EXPECT_EQ(support::fixed(1.2345, 2), "1.23");
}

TEST(Strings, ReplaceAll)
{
    EXPECT_EQ(support::replaceAll("a-b-c", "-", "+"), "a+b+c");
    EXPECT_EQ(support::replaceAll("aaa", "aa", "b"), "ba");
    EXPECT_EQ(support::replaceAll("x", "", "y"), "x");
}

TEST(Rng, DeterministicAndBounded)
{
    support::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    support::Rng c(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(c.below(13), 13u);
    // Zero seed is remapped, not stuck at zero.
    support::Rng z(0);
    EXPECT_NE(z.next(), 0u);
}

TEST(Rng, LegacyBelowStreamIsFrozen)
{
    // Golden stream: version 1 must keep producing the exact values the
    // recorded fuzz seeds and workload input generators were built on
    // (xorshift32 from seed 42, reduced mod 1000).
    support::Rng legacy(42, support::Rng::kLegacyBelow);
    for (std::uint32_t e : {432u, 348u, 59u, 16u, 556u, 134u, 840u, 334u})
        EXPECT_EQ(legacy.below(1000), e);
}

TEST(Rng, RejectionSamplingRemovesModuloBias)
{
    // With bound = 3 * 2^30, `next() % bound` maps the top quarter of
    // the 32-bit range back onto the first bucket, so the legacy
    // version draws bucket 0 about half the time. The rejection
    // sampler must keep all three buckets near 1/3.
    const std::uint32_t bound = 0xC0000000u; // 3 * 2^30
    const int draws = 30'000;
    auto bucketShare = [&](int version) {
        support::Rng rng(0xB1A5u, version);
        int bucket0 = 0;
        for (int i = 0; i < draws; ++i) {
            if (rng.below(bound) < bound / 3)
                ++bucket0;
        }
        return static_cast<double>(bucket0) / draws;
    };
    double legacy = bucketShare(support::Rng::kLegacyBelow);
    double uniform = bucketShare(support::Rng::kUniformBelow);
    // Legacy: P(bucket 0) = (2^30 + 2^30) / 2^32 = 1/2.
    EXPECT_NEAR(legacy, 0.5, 0.02);
    EXPECT_NEAR(uniform, 1.0 / 3.0, 0.02);
}

TEST(Rng, UniformBelowStaysInRangeForAwkwardBounds)
{
    support::Rng rng(99);
    for (std::uint32_t bound : {1u, 2u, 3u, 7u, 0xFFFFu,
                                0x80000001u, 0xFFFFFFFFu}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(support::panic("x"), support::PanicError);
    EXPECT_THROW(support::fatal("x"), support::FatalError);
    try {
        support::fatal("value=", 42, " addr=", support::hex16(0x1234));
    } catch (const support::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value=42"),
                  std::string::npos);
    }
}

TEST(Disasm, RendersOperandForms)
{
    using isa::Op;
    using isa::Operand;
    using isa::Reg;
    isa::Instr i;
    i.op = Op::Mov;
    i.src = Operand::makeImm(0x1234);
    i.dst = Operand::makeReg(Reg::R5);
    EXPECT_EQ(isa::disasm(i), "MOV #0x1234, R5");
    i.byte = true;
    i.src = Operand::makeIndirect(Reg::R4, true);
    i.dst = Operand::makeIndexed(Reg::R6, 2);
    EXPECT_EQ(isa::disasm(i), "MOV.B @R4+, 0x0002(R6)");
    isa::Instr j;
    j.op = Op::Jne;
    j.jump_target = 0x8010;
    EXPECT_EQ(isa::disasm(j), "JNE 0x8010");
    isa::Instr r;
    r.op = Op::Reti;
    EXPECT_EQ(isa::disasm(r), "RETI");
    isa::Instr p;
    p.op = Op::Push;
    p.dst = Operand::makeAbs(0x2000);
    EXPECT_EQ(isa::disasm(p), "PUSH &0x2000");
}

TEST(Printer, SectionSummaryMentionsEverySection)
{
    auto r = masm::assemble(masm::parse("        NOP\n"),
                            masm::LayoutSpec{});
    std::string text = masm::sectionSummary(r.image);
    for (const char *name : {".text", ".const", ".data", ".bss"})
        EXPECT_NE(text.find(name), std::string::npos) << name;
}

TEST(Report, TableFormatsAndPads)
{
    harness::Table t({"Name", "Value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "12345"});
    std::string text = t.text();
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("12345"), std::string::npos);
    // Header separator present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Report, PercentDeltaAndCommas)
{
    EXPECT_EQ(harness::percentDelta(1.5, 1.0), "+50.0%");
    EXPECT_EQ(harness::percentDelta(0.75, 1.0), "-25.0%");
    EXPECT_EQ(harness::percentDelta(1.0, 0.0), "n/a");
    EXPECT_EQ(harness::withCommas(1234567), "1,234,567");
    EXPECT_EQ(harness::withCommas(12), "12");
    EXPECT_EQ(harness::withCommas(0), "0");
}

TEST(Report, GeoMean)
{
    EXPECT_DOUBLE_EQ(harness::geoMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(harness::geoMean({}), 1.0);
    EXPECT_EQ(harness::geoMeanDelta({0.5, 0.5}), "-50.0%");
}

TEST(Placement, PlansMatchMemoryMap)
{
    using harness::Placement;
    auto unified = harness::makePlacement(Placement::Unified);
    EXPECT_EQ(unified.layout.text_base, 0x8000);
    EXPECT_FALSE(unified.stack_in_sram);
    EXPECT_EQ(unified.stack_top, 0xFF80);

    auto standard = harness::makePlacement(Placement::Standard);
    EXPECT_EQ(*standard.layout.data_base, 0x2000);
    EXPECT_TRUE(standard.stack_in_sram);

    auto sram_code = harness::makePlacement(Placement::SramCode);
    EXPECT_EQ(sram_code.layout.text_base, 0x2000);
    EXPECT_EQ(*sram_code.layout.const_base, 0x8000);

    for (auto p : {Placement::Unified, Placement::Standard,
                   Placement::SramCode, Placement::SramAll,
                   Placement::Split}) {
        EXPECT_FALSE(harness::placementName(p).empty());
    }
}

TEST(Placement, DnfWhenProgramTooBig)
{
    // A text section bigger than SRAM cannot use the SramAll placement.
    std::string big = "        .text\n        .func main\n";
    for (int i = 0; i < 1200; ++i)
        big += "        MOV #0x1234, R5\n"; // 4 bytes each: ~4.8 KiB
    big += "        RET\n        .endfunc\n"
           "        .data\n        .align 2\nbench_result: .word 0\n";
    workloads::Workload w;
    w.name = "big";
    w.display = "BIG";
    w.source = big;
    harness::RunSpec spec;
    spec.workload = &w;
    spec.include_lib = false;
    spec.placement = harness::Placement::SramAll;
    auto m = harness::runOne(spec);
    EXPECT_FALSE(m.fits);
    EXPECT_NE(m.fit_note.find("SRAM"), std::string::npos);
}

TEST(Json, BuildAndDump)
{
    namespace json = support::json;
    json::Value v = json::Object{
        {"int", std::int64_t{1234567890123}},
        {"str", "he\"llo\n"},
        {"arr", json::Array{1, 2.5, true, nullptr}},
        {"obj", json::Object{{"k", "v"}}},
    };
    EXPECT_EQ(v.dump(),
              "{\"arr\":[1,2.5,true,null],\"int\":1234567890123,"
              "\"obj\":{\"k\":\"v\"},\"str\":\"he\\\"llo\\n\"}");
    // Pretty-printing parses back to the same structure.
    json::Value again = json::parse(v.dump(2));
    EXPECT_EQ(again["int"].asInt(), 1234567890123);
    EXPECT_EQ(again["str"].asString(), "he\"llo\n");
    EXPECT_EQ(again["arr"].asArray().size(), 4u);
    EXPECT_TRUE(again["arr"].at(2).asBool());
    EXPECT_TRUE(again["arr"].at(3).isNull());
    EXPECT_EQ(again["obj"]["k"].asString(), "v");
    // Absent keys / out-of-range indices degrade to null.
    EXPECT_TRUE(again["missing"].isNull());
    EXPECT_TRUE(again["arr"].at(99).isNull());
}

TEST(Json, ParseAcceptsEscapesAndNumbers)
{
    namespace json = support::json;
    json::Value v = json::parse(
        "  {\"u\": \"a\\u0041\\t\", \"neg\": -42, \"f\": 1.5e2} ");
    EXPECT_EQ(v["u"].asString(), "aA\t");
    EXPECT_EQ(v["neg"].asInt(), -42);
    EXPECT_DOUBLE_EQ(v["f"].asDouble(), 150.0);
}

TEST(Json, ParseRejectsMalformedInput)
{
    namespace json = support::json;
    EXPECT_THROW(json::parse("{"), support::FatalError);
    EXPECT_THROW(json::parse("[1,]"), support::FatalError);
    EXPECT_THROW(json::parse("{\"a\":1} trailing"),
                 support::FatalError);
    EXPECT_THROW(json::parse("\"unterminated"), support::FatalError);
    EXPECT_THROW(json::parse("nul"), support::FatalError);
}

TEST(Logging, DebugChannelIsLevelGated)
{
    support::setLogLevel(support::LogLevel::Warn);
    EXPECT_FALSE(support::debugEnabled());
    support::setLogLevel(support::LogLevel::Debug);
    EXPECT_TRUE(support::debugEnabled());
    support::setLogLevel(support::LogLevel::Warn);
}

} // namespace
