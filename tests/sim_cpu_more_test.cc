/**
 * @file
 * Additional CPU-semantics tests pinning MSP430 behaviours that the
 * nine workloads do not exercise densely: multi-word BCD chains, byte
 * rotates, stack-pointer addressing, indirect/indexed calls, negative
 * indexed offsets, and flag corner cases.
 */

#include <gtest/gtest.h>

#include "testutil.hh"

namespace {

using namespace swapram;
using test::runBody;
using test::runSource;
using isa::Reg;
namespace sr = isa::sr;

TEST(CpuMore, DaddMultiWordChain)
{
    // 16-digit BCD add via DADD + carry chaining: 99999999 + 1.
    auto r = runBody("        MOV #0x9999, R5\n"
                     "        MOV #0x9999, R6\n" // R6:R5 = 99999999 BCD
                     "        CLRC\n"
                     "        DADD #1, R5\n"
                     "        DADD #0, R6\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x0000);
    EXPECT_EQ(r.reg(Reg::R6), 0x0000);
    // Final carry out of the high word.
    auto r2 = runBody("        MOV #0x9999, R5\n"
                      "        CLRC\n"
                      "        DADD #1, R5\n"
                      "        MOV SR, R7\n");
    EXPECT_TRUE(r2.reg(Reg::R7) & sr::kC);
}

TEST(CpuMore, RrcByteUsesBit7)
{
    auto r = runBody("        MOV #0x0001, R5\n"
                     "        SETC\n"
                     "        RRC.B R5\n"
                     "        MOV SR, R6\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x80); // carry rotated into bit 7
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kC);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kN);
}

TEST(CpuMore, RraByteKeepsSign)
{
    auto r = runBody("        MOV #0x0082, R5\n"
                     "        RRA.B R5\n");
    EXPECT_EQ(r.reg(Reg::R5), 0xC1);
}

TEST(CpuMore, PushByteMovesSpByTwo)
{
    auto r = runBody("        MOV SP, R5\n"
                     "        MOV #0xAB, R6\n"
                     "        PUSH.B R6\n"
                     "        MOV SP, R7\n"
                     "        POP R8\n"); // word pop rebalances
    EXPECT_EQ(static_cast<std::uint16_t>(r.reg(Reg::R5) -
                                         r.reg(Reg::R7)),
              2);
    EXPECT_EQ(r.reg(Reg::R8) & 0xFF, 0xAB);
}

TEST(CpuMore, StackRelativeAddressing)
{
    auto r = runBody("        PUSH #0x1111\n"
                     "        PUSH #0x2222\n"
                     "        MOV 2(SP), R5\n"  // the first push
                     "        MOV @SP, R6\n"    // the second
                     "        ADD #4, SP\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x1111);
    EXPECT_EQ(r.reg(Reg::R6), 0x2222);
}

TEST(CpuMore, NegativeIndexedOffset)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV #buf+4, R5\n"
                             "        MOV #0xBEEF, -4(R5)\n"
                             "        MOV -4(R5), R6\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .data\n"
                             "        .align 2\n"
                             "buf:    .space 8\n");
    EXPECT_EQ(r.reg(Reg::R6), 0xBEEF);
    EXPECT_EQ(r.machine->peek16(r.assembled.symbol("buf")), 0xBEEF);
}

TEST(CpuMore, CallThroughRegisterAndIndexed)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV #target, R5\n"
                             "        CALL R5\n"          // CALL Rn
                             "        MOV #table, R6\n"
                             "        CALL 2(R6)\n"       // CALL X(Rn)
                             "        CALL @R6\n"         // CALL @Rn
                             "        MOV.B #0, &__DONE\n"
                             "halt:   JMP halt\n"
                             "        .func target\n"
                             "        ADD #1, R9\n"
                             "        RET\n"
                             "        .endfunc\n"
                             "        .const\n"
                             "table:  .word target, target\n");
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R9), 3);
}

TEST(CpuMore, SymbolicModeExecutes)
{
    // Bare-symbol (PC-relative) addressing reads/writes memory.
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV #7, var\n"
                             "        ADD var, var2\n"
                             "        MOV var2, R5\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .data\n"
                             "        .align 2\n"
                             "var:    .word 0\n"
                             "var2:   .word 100\n");
    EXPECT_EQ(r.reg(Reg::R5), 107);
}

TEST(CpuMore, CmpByteFlags)
{
    auto r = runBody("        MOV #0x1280, R5\n"
                     "        CMP.B #0x80, R5\n" // equal in the low byte
                     "        MOV SR, R6\n");
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kZ);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kC);
}

TEST(CpuMore, XorOverflowFlag)
{
    // V set only when both operands are negative.
    auto r = runBody("        MOV #0x8000, R5\n"
                     "        MOV #0x8001, R6\n"
                     "        XOR R5, R6\n"
                     "        MOV SR, R7\n"
                     "        MOV #0x8000, R8\n"
                     "        MOV #0x0001, R9\n"
                     "        XOR R8, R9\n"
                     "        MOV SR, R10\n");
    EXPECT_TRUE(r.reg(Reg::R7) & sr::kV);
    EXPECT_FALSE(r.reg(Reg::R10) & sr::kV);
}

TEST(CpuMore, AndByteSetsCarryFromNotZero)
{
    auto r = runBody("        MOV #0xFF00, R5\n"
                     "        AND.B #0xFF, R5\n" // low byte 0
                     "        MOV SR, R6\n");
    EXPECT_EQ(r.reg(Reg::R5), 0);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kZ);
    EXPECT_FALSE(r.reg(Reg::R6) & sr::kC);
}

TEST(CpuMore, SubcBorrowChain32Bit)
{
    // 0x00010000 - 1 = 0x0000FFFF via SUB/SUBC.
    auto r = runBody("        CLR R5\n"       // low
                     "        MOV #1, R6\n"   // high
                     "        SUB #1, R5\n"
                     "        SUBC #0, R6\n");
    EXPECT_EQ(r.reg(Reg::R5), 0xFFFF);
    EXPECT_EQ(r.reg(Reg::R6), 0x0000);
}

TEST(CpuMore, ByteMemoryReadModifyWrite)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        ADD.B #1, &bytes+1\n"
                             "        XOR.B #0xFF, &bytes\n"
                             "        MOV &bytes, R5\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .data\n"
                             "bytes:  .byte 0x0F, 0x7F\n");
    // bytes[0] = 0x0F ^ 0xFF = 0xF0; bytes[1] = 0x80.
    EXPECT_EQ(r.reg(Reg::R5), 0x80F0);
}

TEST(CpuMore, SwpbOnMemory)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        SWPB &w\n"
                             "        MOV &w, R5\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .data\n"
                             "        .align 2\n"
                             "w:      .word 0x1234\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x3412);
}

TEST(CpuMore, JumpBackwardMaxRange)
{
    // A taken backward jump at the edge of the encodable range.
    std::string body = "        MOV #2, R5\n"
                       "back:   DEC R5\n";
    for (int i = 0; i < 505; ++i)
        body += "        NOP\n";
    body += "        TST R5\n        JNZ back\n";
    auto r = runBody(body);
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R5), 0);
}

} // namespace
