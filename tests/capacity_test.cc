/**
 * @file
 * SRAM capacity pressure (ISSUE 7): eviction behaviour, the data-side
 * SwapRAM pool, and their interaction with every other subsystem.
 *
 *  - Differential matrix: with eviction enabled but never triggered
 *    (everything fits), every layout-independent result must be
 *    identical to the evict-off run — same checksum, console, .data
 *    snapshot, swap-in count, and zero evictions. The cycle totals may
 *    differ (the evict-capable runtime is larger, which moves code),
 *    which is exactly why the golden suite pins them separately.
 *  - Superblock twins: block-stepped dispatch and the single-step
 *    path must agree instruction-for-instruction while thrashing and
 *    while tiling data through the pool.
 *  - Eviction invariants: random fuzz programs and the capacity
 *    workloads run at starvation-sized SRAM; the runner's post-run
 *    verifySwapInvariants() walk (redirect cells point at the FRAM
 *    body or at a live, non-overlapping SRAM copy; __swp_cached
 *    matches the bitmap-free geometry) panics on any violation, so a
 *    clean ok() here is the property under test.
 *  - Runtime counters: the generated __swp_nevict/__swp_nretry and
 *    data-pool counters read back through Metrics and the RunReport.
 *  - Crash windows: single power failures swept densely across an
 *    eviction storm and across data-pool tiling must always converge
 *    (__swp_recover rebuilds a consistent state from any cycle).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/engine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "sim/fault.hh"
#include "support/platform.hh"
#include "fuzz_programs.hh"

namespace {

using namespace swapram;

harness::RunSpec
swapSpecAt(const workloads::Workload &w, std::uint32_t sram_size,
           bool evict = true, bool superblock = true)
{
    harness::RunSpec spec = harness::capacitySpec(
        w, harness::System::SwapRam, sram_size);
    spec.swap.evict = evict;
    spec.superblock = superblock;
    return spec;
}

// ---- Differential: evict-on where everything fits == evict-off ----

TEST(CapacityDifferential, EvictOnIsInertWhenEverythingFits)
{
    // The classic nine all fit at the platform default: eviction must
    // never fire, and everything layout-independent must agree with
    // the evict-off (pre-eviction) runtime.
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload &w : workloads::all()) {
        specs.push_back(swapSpecAt(w, platform::kSramSize, true));
        specs.push_back(swapSpecAt(w, platform::kSramSize, false));
    }
    harness::Engine engine;
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);
    for (std::size_t i = 0; i < outcomes.size(); i += 2) {
        const std::string &name = specs[i].workload->name;
        ASSERT_TRUE(outcomes[i].ok()) << name;
        ASSERT_TRUE(outcomes[i + 1].ok()) << name;
        const harness::Metrics &on = outcomes[i].metrics;
        const harness::Metrics &off = outcomes[i + 1].metrics;
        ASSERT_TRUE(on.done && off.done) << name;
        EXPECT_EQ(on.checksum, off.checksum) << name;
        EXPECT_EQ(on.console, off.console) << name;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << name;
        EXPECT_EQ(on.swap_summary.copy_ins, off.swap_summary.copy_ins)
            << name;
        EXPECT_EQ(on.swap_summary.evictions, 0u) << name;
        EXPECT_EQ(off.swap_summary.evictions, 0u) << name;
        EXPECT_EQ(on.rt_evictions, 0u) << name;
        EXPECT_EQ(on.rt_retries, 0u) << name;
    }
}

TEST(CapacityDifferential, CapacityWorkloadsFitAtLargestSize)
{
    // At 8 KiB every capacity workload's working set fits, so the
    // evict-on/evict-off differential extends to them too.
    harness::Engine engine;
    for (const workloads::Workload &w : workloads::capacity()) {
        std::vector<harness::RunSpec> specs{swapSpecAt(w, 8192, true),
                                            swapSpecAt(w, 8192, false)};
        auto outcomes = engine.runAll(specs);
        ASSERT_TRUE(outcomes[0].ok() && outcomes[1].ok()) << w.name;
        const harness::Metrics &on = outcomes[0].metrics;
        const harness::Metrics &off = outcomes[1].metrics;
        ASSERT_TRUE(on.done && off.done) << w.name;
        EXPECT_EQ(on.checksum, w.expected) << w.name;
        EXPECT_EQ(off.checksum, w.expected) << w.name;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << w.name;
        EXPECT_EQ(on.swap_summary.evictions, 0u) << w.name;
    }
}

// ---- Superblock twins under capacity pressure ----

TEST(CapacitySuperblock, TwinsAgreeWhileThrashingAndTiling)
{
    // Dispatch engine must be invisible: identical architectural
    // results and identical cycle accounting on the eviction storm
    // (pingpong @4 KiB), the starved scan (arith_big @1 KiB), and the
    // data-pool tiling path (rc4_big).
    struct Case {
        const char *name;
        std::uint32_t sram;
    };
    const Case cases[] = {{"pingpong", 4096},
                          {"arith_big", 1024},
                          {"crc_big", 2048},
                          {"rc4_big", 4096}};
    harness::Engine engine;
    for (const Case &c : cases) {
        const workloads::Workload *w = workloads::find(c.name);
        ASSERT_NE(w, nullptr) << c.name;
        std::vector<harness::RunSpec> specs{
            swapSpecAt(*w, c.sram, true, true),
            swapSpecAt(*w, c.sram, true, false)};
        auto outcomes = engine.runAll(specs);
        ASSERT_TRUE(outcomes[0].ok() && outcomes[1].ok()) << c.name;
        const harness::Metrics &on = outcomes[0].metrics;
        const harness::Metrics &off = outcomes[1].metrics;
        ASSERT_TRUE(on.done && off.done) << c.name;
        EXPECT_EQ(on.checksum, off.checksum) << c.name;
        EXPECT_EQ(on.stats.instructions, off.stats.instructions)
            << c.name;
        EXPECT_EQ(on.stats.base_cycles, off.stats.base_cycles)
            << c.name;
        EXPECT_EQ(on.stats.stall_cycles, off.stats.stall_cycles)
            << c.name;
        EXPECT_EQ(on.rt_evictions, off.rt_evictions) << c.name;
        EXPECT_EQ(on.rt_data_in, off.rt_data_in) << c.name;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << c.name;
    }
}

// ---- Eviction invariants under fuzz ----

TEST(CapacityInvariants, FuzzProgramsSurviveStarvedCaches)
{
    // Random programs at starvation-sized SRAM: the cache is too
    // small for most call graphs, so misses constantly evict, retry,
    // and fall back to FRAM. The post-run invariant walk inside the
    // runner panics (→ error outcome) if any redirect cell points at
    // freed or overlapping SRAM; the baseline run is the checksum
    // oracle.
    harness::Engine engine;
    int verified = 0;
    for (std::uint32_t seed = 1; seed <= 16; ++seed) {
        test::FuzzOptions opts;
        opts.version = 2;
        workloads::Workload w = test::randomProgram(seed, opts);

        harness::RunSpec base;
        base.workload = &w;
        std::vector<harness::RunSpec> specs{base};
        for (std::uint32_t sram : {1024u, 2048u})
            specs.push_back(swapSpecAt(w, sram));
        auto outcomes = engine.runAll(specs);
        ASSERT_TRUE(outcomes[0].ok()) << "seed " << seed;
        const harness::Metrics &oracle = outcomes[0].metrics;
        ASSERT_TRUE(oracle.done) << "seed " << seed;
        for (std::size_t i = 1; i < outcomes.size(); ++i) {
            ASSERT_TRUE(outcomes[i].ok())
                << "seed " << seed << " sram "
                << specs[i].sram_size << ": "
                << outcomes[i].error_text;
            const harness::Metrics &m = outcomes[i].metrics;
            if (!m.fits)
                continue; // program bigger than this SRAM ladder step
            ASSERT_TRUE(m.done) << "seed " << seed;
            EXPECT_EQ(m.checksum, oracle.checksum)
                << "seed " << seed << " sram " << specs[i].sram_size;
            ++verified;
        }
    }
    EXPECT_GE(verified, 16); // the ladder must actually run programs
}

TEST(CapacityInvariants, CapacityLadderMatchesGoldenAtEverySize)
{
    // Every cell of the canonical capacity matrix completes with the
    // workload's golden checksum (and therefore passes the post-run
    // invariant verification).
    harness::Engine engine;
    std::vector<harness::MatrixCell> matrix = harness::capacityMatrix();
    std::vector<harness::RunSpec> specs;
    for (const harness::MatrixCell &mc : matrix)
        specs.push_back(harness::capacitySpec(*mc.workload, mc.system,
                                              mc.sram_size));
    auto outcomes = engine.runAll(specs);
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        const std::string ctx =
            matrix[i].workload->name + "@" +
            std::to_string(matrix[i].sram_size);
        ASSERT_TRUE(outcomes[i].ok()) << ctx;
        const harness::Metrics &m = outcomes[i].metrics;
        ASSERT_TRUE(m.fits) << ctx << ": " << m.fit_note;
        ASSERT_TRUE(m.done) << ctx;
        EXPECT_EQ(m.checksum, matrix[i].workload->expected) << ctx;
    }
}

// ---- Runtime counters and the data pool ----

TEST(CapacityCounters, ThrashAndHitRegimesReadBack)
{
    // pingpong @4 KiB is the designed worst case: each call to one
    // huge function evicts the other.
    auto thrash = harness::runOne(
        swapSpecAt(*workloads::find("pingpong"), 4096));
    ASSERT_TRUE(thrash.done);
    EXPECT_GT(thrash.rt_evictions, 20u);
    EXPECT_GT(thrash.rt_retries, 0u);
    EXPECT_EQ(thrash.rt_evictions, thrash.swap_summary.evictions);

    // @8 KiB both functions fit side by side: no eviction at all.
    auto fits = harness::runOne(
        swapSpecAt(*workloads::find("pingpong"), 8192));
    ASSERT_TRUE(fits.done);
    EXPECT_EQ(fits.rt_evictions, 0u);
    EXPECT_EQ(fits.rt_retries, 0u);
    EXPECT_LT(fits.stats.totalCycles(), thrash.stats.totalCycles() / 4);
}

TEST(CapacityCounters, DataPoolTilesAndWritesBack)
{
    // rc4_big streams a 6 KiB FRAM-resident message through a 512 B
    // SRAM pool: 24 tiles × 2 passes = 48 swap-ins and write-backs.
    const workloads::Workload *w = workloads::find("rc4_big");
    ASSERT_NE(w, nullptr);
    harness::RunSpec spec = swapSpecAt(*w, platform::kSramSize);
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w->expected);
    EXPECT_EQ(m.rt_data_in, 48u);
    EXPECT_EQ(m.rt_data_out, 48u);
    EXPECT_EQ(m.rt_data_full, 0u);

    // The timeline reconstructs the same traffic from the bus alone.
    EXPECT_EQ(m.swap_summary.data_swap_ins, 48u);
    EXPECT_EQ(m.swap_summary.data_swap_outs, 48u);
    EXPECT_EQ(m.swap_summary.data_bytes_copied, 48u * 2u * 256u);
    int in_events = 0, out_events = 0;
    for (const trace::SwapEvent &e : m.swap_events) {
        if (e.kind == trace::EventKind::DataSwapIn)
            ++in_events;
        else if (e.kind == trace::EventKind::DataSwapOut)
            ++out_events;
    }
    EXPECT_EQ(in_events, 48);
    EXPECT_EQ(out_events, 48);

    // And the report carries both views.
    auto report = harness::RunReport::make(spec, m);
    std::string json = report.json().dump(0);
    EXPECT_NE(json.find("\"runtime_counters\""), std::string::npos);
    EXPECT_NE(json.find("\"data_swap_ins\""), std::string::npos);
    EXPECT_NE(json.find("\"sram_size\""), std::string::npos);
}

TEST(CapacityCounters, PoolFallsBackToFramWhenFull)
{
    // Shrink the pool below one tile: __swp_din cannot place the
    // buffer, returns the FRAM home, and counts the miss — the result
    // must still be correct, just slower.
    const workloads::Workload *w = workloads::find("rc4_big");
    ASSERT_NE(w, nullptr);
    harness::RunSpec spec = swapSpecAt(*w, platform::kSramSize);
    spec.swap.data_pool_bytes = 128; // tile is 256 B: never fits
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w->expected);
    EXPECT_EQ(m.rt_data_in, 0u);
    EXPECT_EQ(m.rt_data_out, 0u);
    EXPECT_EQ(m.rt_data_full, 48u);
}

// ---- Crash windows: power loss mid-eviction / mid-data-swap ----

/** Sweep a single power failure across @p points cycle positions in
 *  [lo, hi); every position must converge to the clean run. */
void
sweepCrashWindow(harness::RunSpec spec, std::uint64_t lo,
                 std::uint64_t hi, int points, const char *what)
{
    for (int i = 0; i < points; ++i) {
        std::uint64_t at = lo + (hi - lo) * i / points;
        spec.intermittent.plan = sim::FaultPlan::once(at);
        auto check = harness::checkIntermittent(spec);
        EXPECT_TRUE(check.match())
            << what << ": single failure at cycle " << at
            << " diverged (checksum "
            << check.faulted.checksum << " vs "
            << check.reference.checksum << ")";
    }
}

TEST(CapacityCrashWindows, PowerLossMidEvictionConverges)
{
    // pingpong @4 KiB evicts ~47 times spread across the whole run:
    // 24 evenly spaced single-failure points land inside miss
    // handling, mid-__swp_memcpy, and mid-scan with high probability.
    const workloads::Workload *w = workloads::find("pingpong");
    ASSERT_NE(w, nullptr);
    harness::RunSpec spec = swapSpecAt(*w, 4096);
    auto clean = harness::runOne(spec);
    ASSERT_TRUE(clean.done);
    ASSERT_GT(clean.rt_evictions, 20u);
    sweepCrashWindow(spec, 200, clean.stats.totalCycles(), 24,
                     "pingpong@4096");
}

TEST(CapacityCrashWindows, PowerLossMidDataSwapConverges)
{
    // rc4_big tiles the pool for the entire run; failures land inside
    // __swp_din/__swp_dout copies and between tiles. __swp_recover
    // clears the pool bitmap, so the restarted pass re-swaps cleanly.
    const workloads::Workload *w = workloads::find("rc4_big");
    ASSERT_NE(w, nullptr);
    harness::RunSpec spec = swapSpecAt(*w, platform::kSramSize);
    auto clean = harness::runOne(spec);
    ASSERT_TRUE(clean.done);
    ASSERT_EQ(clean.rt_data_in, 48u);
    sweepCrashWindow(spec, 500, clean.stats.totalCycles(), 16,
                     "rc4_big@4096");
}

} // namespace
