/**
 * @file
 * Threaded-code tier tests. Like the superblock engine it lowers, the
 * tier is a host-side optimization only: every simulated observable —
 * registers, memory, checksums, cycle/stall counts, per-region access
 * counts, interrupt and reboot cycles — must be bit-identical with
 * threaded dispatch on or off (block-stepped superblock dispatch, and
 * transitively the single-step oracle, is the reference). The
 * host-side threaded_* and superblock_* counter families are the only
 * permitted divergence.
 *
 * Coverage concentrates on the bail-out guards: register-dependent
 * MMIO operands, stores into the executing block, fault/timer cycle
 * boundaries, mid-eviction and data-pool swap windows under capacity
 * pressure, harvest brown-outs landing mid-chain, and the full golden
 * workload×system×sram_size matrix.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/engine.hh"
#include "harness/report.hh"
#include "sim/fault.hh"
#include "sim/harvest.hh"
#include "support/platform.hh"
#include "testutil.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using isa::Reg;

sim::MachineConfig
withThreaded(bool enabled)
{
    sim::MachineConfig config;
    // The tier only exists on top of the superblock engine's block
    // table; off means block-stepped dispatch of the same blocks.
    config.superblock_enabled = true;
    config.threaded_enabled = enabled;
    return config;
}

/** Every simulated Stats field (host-side fast-path counters — the
 *  predecode hit/miss, superblock_*, and threaded_* families —
 *  excluded; the predecode *invalidation* count tracks the write
 *  stream, which is identical in both modes, so it is compared). */
void
expectSimStatsEqual(const sim::Stats &a, const sim::Stats &b,
                    const std::string &ctx)
{
    EXPECT_EQ(a.instructions, b.instructions) << ctx;
    EXPECT_EQ(a.base_cycles, b.base_cycles) << ctx;
    EXPECT_EQ(a.stall_cycles, b.stall_cycles) << ctx;
    EXPECT_EQ(a.sram.fetch, b.sram.fetch) << ctx;
    EXPECT_EQ(a.sram.read, b.sram.read) << ctx;
    EXPECT_EQ(a.sram.write, b.sram.write) << ctx;
    EXPECT_EQ(a.fram.fetch, b.fram.fetch) << ctx;
    EXPECT_EQ(a.fram.read, b.fram.read) << ctx;
    EXPECT_EQ(a.fram.write, b.fram.write) << ctx;
    EXPECT_EQ(a.mmio.fetch, b.mmio.fetch) << ctx;
    EXPECT_EQ(a.mmio.read, b.mmio.read) << ctx;
    EXPECT_EQ(a.mmio.write, b.mmio.write) << ctx;
    EXPECT_EQ(a.fram_cache_hits, b.fram_cache_hits) << ctx;
    EXPECT_EQ(a.fram_cache_misses, b.fram_cache_misses) << ctx;
    EXPECT_EQ(a.code_space_accesses, b.code_space_accesses) << ctx;
    EXPECT_EQ(a.data_space_accesses, b.data_space_accesses) << ctx;
    for (int i = 0; i < sim::kNumOwners; ++i)
        EXPECT_EQ(a.instr_by_owner[i], b.instr_by_owner[i])
            << ctx << " owner " << i;
    EXPECT_EQ(a.interrupts, b.interrupts) << ctx;
    EXPECT_EQ(a.reboots, b.reboots) << ctx;
    EXPECT_EQ(a.recovery_cycles, b.recovery_cycles) << ctx;
    EXPECT_EQ(a.predecode_invalidations, b.predecode_invalidations)
        << ctx;
}

/** The host-side counters exist, are coherent, and the tier actually
 *  replaces block-stepped dispatch (not runs alongside it). */
TEST(Threaded, CountersAccountForBlockCoverage)
{
    const char body[] =
        "        MOV #50, R10\n"
        "cloop:  ADD #3, R11\n"
        "        XOR R11, R12\n"
        "        DEC R10\n"
        "        JNZ cloop\n";
    test::MiniRun on = test::runBody(body, withThreaded(true));
    ASSERT_TRUE(on.result.done);
    const sim::Stats &s = on.stats();
    EXPECT_GT(s.threaded_blocks_lowered, 0u);
    EXPECT_GT(s.threaded_dispatches, 0u);
    EXPECT_GT(s.threaded_instructions, 0u);
    EXPECT_LE(s.threaded_instructions, s.instructions);
    // The loop dominates: most instructions retire in threaded mode.
    EXPECT_GT(s.threaded_instructions, s.instructions / 2);
    // The tier replaces the block-stepped dispatcher entirely.
    EXPECT_EQ(s.superblock_dispatches, 0u);

    test::MiniRun off = test::runBody(body, withThreaded(false));
    ASSERT_TRUE(off.result.done);
    EXPECT_EQ(off.stats().threaded_dispatches, 0u);
    EXPECT_GT(off.stats().superblock_dispatches, 0u);
    expectSimStatsEqual(on.stats(), off.stats(), "counters");
}

/** A register-dependent store into MMIO space: the inline mapped-space
 *  pre-check must bail to the oracle with nothing committed, so the
 *  device sees exactly one write per loop iteration. */
const char kDynMmioBody[] =
    "        MOV #0x0100, R7\n" // console register, via register
    "        MOV #65, R6\n"
    "        MOV #3, R10\n"
    "loop:   MOV.B R6, 0(R7)\n"
    "        ADD #1, R6\n"
    "        DEC R10\n"
    "        JNZ loop\n";

TEST(Threaded, DynamicMmioOperandBailsToOracle)
{
    test::MiniRun on = test::runBody(kDynMmioBody, withThreaded(true));
    test::MiniRun off = test::runBody(kDynMmioBody, withThreaded(false));
    ASSERT_TRUE(on.result.done);
    EXPECT_EQ(on.machine->mmio().console(), "ABC");
    EXPECT_EQ(off.machine->mmio().console(), "ABC");
    expectSimStatsEqual(on.stats(), off.stats(), "dyn-mmio");
    EXPECT_GT(on.stats().threaded_bail_operand, 0u);
}

/** Within-block self-modification: the store lands on the *next*
 *  instruction of the same straight-line block (patching ADD #1 into
 *  ADD #2 before it executes). The page-generation check after the
 *  committed store must stop the chain, not execute the stale lowered
 *  kernel. */
const char kSmcBody[] =
    "        MOV #0, R12\n"
    "        MOV &alt, &patch\n"
    "patch:  ADD #1, R12\n"
    "        JMP fin\n"
    "alt:    ADD #2, R12\n"
    "fin:\n";

TEST(Threaded, SelfModifyingStoreInOwnBlockMatchesOracle)
{
    test::MiniRun on = test::runBody(kSmcBody, withThreaded(true));
    test::MiniRun off = test::runBody(kSmcBody, withThreaded(false));
    ASSERT_TRUE(on.result.done);
    ASSERT_TRUE(off.result.done);
    EXPECT_EQ(on.reg(Reg::R12), 2) << "stale lowered kernel executed";
    EXPECT_EQ(off.reg(Reg::R12), 2);
    expectSimStatsEqual(on.stats(), off.stats(), "smc");
    EXPECT_GT(on.stats().threaded_bail_smc, 0u);
}

/** Timer interrupts must land on exactly the same cycle: the chain
 *  must refuse any block whose worst-case bound could reach the fire
 *  cycle, handing back to the single-stepping machine loop. */
const char *kTimerProgram = R"(
        .text
__start:
        MOV #0x3000, SP
        MOV #tick_isr, &0xFFF0
        EINT
        MOV #400, R10
fg_loop:
        MOV #13, R12
        ADD #29, R12
        XOR R12, &fg_acc
        DEC R10
        JNZ fg_loop
        DINT
        MOV &tick_count, R12
        MOV.B #0, &__DONE
__halt: JMP __halt

        .func tick_isr
        ADD #1, &tick_count
        RETI
        .endfunc

        .data
        .align 2
tick_count: .word 0
fg_acc:     .word 0
)";

TEST(Threaded, TimerInterruptsLandOnSameCycle)
{
    for (std::uint64_t period : {97ull, 500ull, 1024ull}) {
        sim::MachineConfig on_cfg = withThreaded(true);
        sim::MachineConfig off_cfg = withThreaded(false);
        on_cfg.timer_period_cycles = period;
        off_cfg.timer_period_cycles = period;
        test::MiniRun on = test::runSource(kTimerProgram, on_cfg);
        test::MiniRun off = test::runSource(kTimerProgram, off_cfg);
        ASSERT_TRUE(on.result.done);
        ASSERT_TRUE(off.result.done);
        std::string ctx = "timer period " + std::to_string(period);
        EXPECT_GT(on.stats().interrupts, 0u) << ctx;
        EXPECT_EQ(on.reg(Reg::R12), off.reg(Reg::R12)) << ctx;
        expectSimStatsEqual(on.stats(), off.stats(), ctx);
    }
}

/** Power failures must hit on exactly the same cycle — the injector's
 *  next-failure cycle bounds every dispatched chain link. Data lives
 *  in FRAM so progress survives the reboots. */
const char *kFaultProgram = R"(
        .text
__start:
        MOV #0x3000, SP
        MOV #300, R10
floop:  ADD #7, &acc
        XOR &acc, &mix
        DEC R10
        JNZ floop
        MOV.B #0, &__DONE
__halt: JMP __halt

        .data
        .align 2
acc:    .word 0
mix:    .word 0
)";

struct FaultRun {
    sim::Stats stats;
    std::uint16_t acc = 0;
    std::uint16_t mix = 0;
};

FaultRun
runFaulted(bool threaded)
{
    masm::LayoutSpec layout;
    layout.data_base = 0x9000;
    auto assembled = masm::assemble(masm::parse(kFaultProgram), layout);
    sim::Machine machine(withThreaded(threaded));
    machine.load(assembled.image, 0x3000);
    sim::FaultPlan plan = sim::FaultPlan::periodic(900, 5);
    sim::FaultInjector injector(plan);
    machine.setFaultInjector(&injector);
    auto result = machine.run();
    EXPECT_TRUE(result.done);
    return {machine.stats(), machine.peek16(assembled.symbol("acc")),
            machine.peek16(assembled.symbol("mix"))};
}

TEST(Threaded, InjectedFaultsLandOnSameCycle)
{
    FaultRun on = runFaulted(true);
    FaultRun off = runFaulted(false);
    EXPECT_EQ(on.stats.reboots, 5u);
    EXPECT_GT(on.stats.threaded_dispatches, 0u);
    expectSimStatsEqual(on.stats, off.stats, "fault");
    EXPECT_EQ(on.acc, off.acc);
    EXPECT_EQ(on.mix, off.mix);
}

/** Capacity pressure: SRAM sizes where the SwapRAM runtime constantly
 *  evicts (arith_big/crc_big/pingpong) or tiles data through the pool
 *  (rc4_big). Chains repeatedly cross miss-handler entries,
 *  mid-eviction scans, and __swp_din/__swp_dout copy windows; the
 *  lowered code and the block-stepped dispatcher must account every
 *  one of them identically. */
TEST(Threaded, EvictionAndDataSwapWindowsMatch)
{
    std::vector<harness::RunSpec> specs;
    std::vector<std::string> names;
    for (const workloads::Workload &w : workloads::capacity()) {
        for (std::uint32_t sram : {1024u, 4096u}) {
            harness::RunSpec spec = harness::capacitySpec(
                w, harness::System::SwapRam, sram);
            names.push_back(w.name + "@" + std::to_string(sram));
            spec.threaded = true;
            specs.push_back(spec);
            spec.threaded = false;
            specs.push_back(spec);
        }
    }
    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll(specs);
    for (std::size_t i = 0; i < outcomes.size(); i += 2) {
        const std::string &key = names[i / 2];
        ASSERT_TRUE(outcomes[i].ok()) << key;
        ASSERT_TRUE(outcomes[i + 1].ok()) << key;
        const harness::Metrics &on = outcomes[i].metrics;
        const harness::Metrics &off = outcomes[i + 1].metrics;
        ASSERT_TRUE(on.fits) << key;
        ASSERT_TRUE(on.done) << key;
        EXPECT_EQ(on.checksum, off.checksum) << key;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << key;
        EXPECT_EQ(on.swap_summary.copy_ins, off.swap_summary.copy_ins)
            << key;
        EXPECT_EQ(on.swap_summary.evictions, off.swap_summary.evictions)
            << key;
        expectSimStatsEqual(on.stats, off.stats, key);
    }
}

/** Harvest-driven brown-outs land mid-chain: the capacitor model
 *  decides the failure cycle from live consumption, so any divergence
 *  in accounting order would shift every subsequent reboot. Both runs
 *  must brown out, checkpoint, and converge (or honestly livelock)
 *  identically. */
TEST(Threaded, HarvestBrownOutMidChainMatches)
{
    workloads::Workload w = workloads::makeCrc();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.placement = harness::Placement::Standard;
    spec.sram_size = 1024; // starve the cache: misses keep committing
    spec.swap.ckpt.scheme = ckpt::Scheme::Periodic;
    spec.swap.ckpt.period = 1;

    harness::Engine engine;
    harness::RunOutcome ref = engine.runAll({spec}).front();
    ASSERT_TRUE(ref.ok()) << ref.error_text;
    ASSERT_TRUE(ref.metrics.fits) << ref.metrics.fit_note;
    ASSERT_TRUE(ref.metrics.done);

    auto trace = std::make_shared<sim::HarvestTrace>(
        sim::HarvestTrace::fromPoints(
            {{0.0, 30e-6}, {0.002, 80e-6}, {0.004, 20e-6}}));
    sim::CapacitorModel cap;
    cap.brown_out_pj = ref.metrics.energy_pj / 4;
    cap.power_on_pj = cap.brown_out_pj + ref.metrics.energy_pj / 6;
    cap.capacity_pj = cap.power_on_pj * 1.25;
    cap.initial_pj = cap.power_on_pj;
    cap.leak_watts = 1e-6;

    harness::RunSpec faulted = spec;
    faulted.intermittent.plan = sim::FaultPlan::harvest(trace, cap);
    faulted.intermittent.livelock_boots = 16;
    faulted.threaded = true;
    harness::RunSpec twin = faulted;
    twin.threaded = false;

    std::vector<harness::RunOutcome> outcomes =
        engine.runAll({faulted, twin});
    ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error_text;
    ASSERT_TRUE(outcomes[1].ok()) << outcomes[1].error_text;
    const harness::Metrics &on = outcomes[0].metrics;
    const harness::Metrics &off = outcomes[1].metrics;
    // The schedule must actually interrupt the run.
    EXPECT_GT(on.stats.reboots, 0u);
    ASSERT_EQ(on.stop, off.stop);
    ASSERT_EQ(on.done, off.done);
    EXPECT_EQ(on.checksum, off.checksum);
    EXPECT_EQ(on.data_snapshot, off.data_snapshot);
    EXPECT_EQ(on.energy_pj, off.energy_pj);
    EXPECT_EQ(on.harvested_pj, off.harvested_pj);
    expectSimStatsEqual(on.stats, off.stats, "harvest");
}

/** The full golden matrix — the classic nine workloads × three systems
 *  at the platform default plus every capacity-pressure cell — with
 *  the tier on vs off. Every simulated observable must agree on all
 *  47 keys; golden_test.cc separately pins the absolute numbers. */
TEST(Threaded, GoldenMatrixStatsEqualAcrossTiers)
{
    const harness::System systems[] = {harness::System::Baseline,
                                       harness::System::SwapRam,
                                       harness::System::BlockCache};
    std::vector<harness::RunSpec> specs;
    std::vector<std::string> names;
    auto push = [&](harness::RunSpec spec, const std::string &name) {
        names.push_back(name);
        spec.superblock = true;
        spec.threaded = true;
        specs.push_back(spec);
        spec.threaded = false;
        specs.push_back(spec);
    };
    for (const workloads::Workload &w : workloads::all()) {
        for (harness::System system : systems) {
            push(harness::sweepSpec(w, system),
                 w.name + "/" + harness::systemName(system) + "@" +
                     std::to_string(platform::kSramSize));
        }
    }
    for (const harness::MatrixCell &mc : harness::capacityMatrix()) {
        push(harness::capacitySpec(*mc.workload, mc.system,
                                   mc.sram_size),
             mc.workload->name + "/" +
                 harness::systemName(mc.system) + "@" +
                 std::to_string(mc.sram_size));
    }

    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll(specs);
    for (std::size_t i = 0; i < outcomes.size(); i += 2) {
        const std::string &key = names[i / 2];
        ASSERT_TRUE(outcomes[i].ok()) << key;
        ASSERT_TRUE(outcomes[i + 1].ok()) << key;
        const harness::Metrics &on = outcomes[i].metrics;
        const harness::Metrics &off = outcomes[i + 1].metrics;
        ASSERT_EQ(on.fits, off.fits) << key;
        if (!on.fits)
            continue;
        ASSERT_EQ(on.done, off.done) << key;
        EXPECT_EQ(on.checksum, off.checksum) << key;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << key;
        EXPECT_EQ(on.console, off.console) << key;
        EXPECT_EQ(on.energy_pj, off.energy_pj) << key;
        expectSimStatsEqual(on.stats, off.stats, key);
    }
}

/** Drop the lines carrying host-side fast-path counters (the permitted
 *  tier divergence) from a dumped RunReport. */
std::string
maskHostCounters(const std::string &json_text)
{
    static const char *kMasked[] = {
        "\"predecode_hits\"",         "\"predecode_misses\"",
        "\"superblock_blocks_built\"", "\"superblock_dispatches\"",
        "\"superblock_instructions\"", "\"superblock_bail_",
        "\"threaded_",
    };
    std::istringstream in(json_text);
    std::string out, line;
    while (std::getline(in, line)) {
        bool masked = false;
        for (const char *key : kMasked)
            if (line.find(key) != std::string::npos)
                masked = true;
        if (!masked) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

/** The machine-readable RunReport must be byte-identical with the
 *  tier on vs off once the host-side counter lines are dropped —
 *  nothing else in the document (stats, profile-free metrics, swap
 *  summary, energy) may move. */
TEST(Threaded, RunReportByteIdenticalWithHostCountersMasked)
{
    workloads::Workload w = workloads::makeCrc();
    harness::RunSpec on_spec =
        harness::sweepSpec(w, harness::System::SwapRam);
    // The sweep spec attaches the swap-timeline trace, which forces
    // single-step on both runs; drop it so the tiers actually engage.
    on_spec.observe = {};
    on_spec.threaded = true;
    harness::RunSpec off_spec = on_spec;
    off_spec.threaded = false;

    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll({on_spec, off_spec});
    ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error_text;
    ASSERT_TRUE(outcomes[1].ok()) << outcomes[1].error_text;

    std::string on_text =
        harness::RunReport::make(on_spec, outcomes[0].metrics)
            .json()
            .dump(2);
    std::string off_text =
        harness::RunReport::make(off_spec, outcomes[1].metrics)
            .json()
            .dump(2);
    EXPECT_NE(on_text, off_text)
        << "host counters should differ across tiers";
    EXPECT_EQ(maskHostCounters(on_text), maskHostCounters(off_text));
}

} // namespace
