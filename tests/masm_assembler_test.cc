/**
 * @file
 * Assembler unit tests: layout, symbols, emission, sizing stability,
 * jump relaxation, and error handling.
 */

#include <gtest/gtest.h>

#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "masm/printer.hh"
#include "support/logging.hh"

namespace {

using namespace swapram;
using masm::assemble;
using masm::LayoutSpec;
using masm::parse;

masm::AssembleResult
asmSource(const std::string &src, LayoutSpec layout = {})
{
    return assemble(parse(src), layout);
}

TEST(Assembler, SymbolAddressesAndSizes)
{
    auto r = asmSource("        .text\n"
                       "start:  MOV #0x1234, R5\n" // 4 bytes
                       "next:   NOP\n"             // 2 bytes
                       "end:    RET\n");           // 2 bytes
    EXPECT_EQ(r.symbol("start"), 0x8000);
    EXPECT_EQ(r.symbol("next"), 0x8004);
    EXPECT_EQ(r.symbol("end"), 0x8006);
    EXPECT_EQ(r.image.text.size, 8u);
}

TEST(Assembler, ConstantGeneratorSizing)
{
    auto r = asmSource("        MOV #1, R5\n"  // 2 (CG)
                       "        MOV #3, R5\n"  // 4
                       "        MOV #-1, R5\n" // 2 (CG)
                       "x:      NOP\n");
    EXPECT_EQ(r.symbol("x"), 0x8008);
}

TEST(Assembler, SymbolicImmediateAlwaysExtWord)
{
    // #K where K == 1 via .equ must still take an extension word so the
    // size is stable regardless of the resolved value.
    auto r = asmSource("        .equ K, 1\n"
                       "        MOV #K, R5\n"
                       "x:      NOP\n");
    EXPECT_EQ(r.symbol("x"), 0x8004);
}

TEST(Assembler, SectionPlacement)
{
    LayoutSpec layout;
    layout.data_base = 0x2000;
    auto r = asmSource("        .text\n"
                       "        NOP\n"
                       "        .const\n"
                       "tbl:    .word 0xBEEF\n"
                       "        .data\n"
                       "var:    .word 42\n"
                       "        .bss\n"
                       "buf:    .space 10\n"
                       "buf2:   .space 2\n",
                       layout);
    EXPECT_EQ(r.image.text.base, 0x8000);
    EXPECT_EQ(r.symbol("tbl"), 0x8002); // const chains after text
    EXPECT_EQ(r.symbol("var"), 0x2000);
    EXPECT_EQ(r.symbol("buf"), 0x2002); // bss chains after data
    EXPECT_EQ(r.symbol("buf2"), 0x200C);
    EXPECT_EQ(r.image.bss.size, 12u);

    // Emitted bytes.
    bool found_tbl = false;
    for (const auto &chunk : r.image.chunks) {
        if (chunk.base == 0x8002) {
            found_tbl = true;
            ASSERT_EQ(chunk.bytes.size(), 2u);
            EXPECT_EQ(chunk.bytes[0], 0xEF);
            EXPECT_EQ(chunk.bytes[1], 0xBE);
        }
    }
    EXPECT_TRUE(found_tbl);
}

TEST(Assembler, WordAtOddOffsetRequiresAlign)
{
    // Without .align, .word at an odd offset is an error (labels must
    // match the data they precede, so silent padding is not allowed).
    EXPECT_THROW(asmSource("        .data\n"
                           "        .byte 1\n"
                           "w:      .word 0x0203\n"),
                 support::FatalError);
    auto r = asmSource("        .data\n"
                       "        .byte 1\n"
                       "        .align 2\n"
                       "w:      .word 0x0203\n");
    EXPECT_EQ(r.symbol("w") & 1, 0);
}

TEST(Assembler, FunctionsAndEndSymbols)
{
    auto r = asmSource("        .text\n"
                       "        .func f1\n"
                       "        MOV #0x1234, R5\n"
                       "        RET\n"
                       "        .endfunc\n"
                       "        .func f2\n"
                       "        RET\n"
                       "        .endfunc\n");
    ASSERT_EQ(r.functions.size(), 2u);
    EXPECT_EQ(r.function("f1").addr, 0x8000);
    EXPECT_EQ(r.function("f1").size, 6);
    EXPECT_EQ(r.function("f2").addr, 0x8006);
    EXPECT_EQ(r.function("f2").size, 2);
    EXPECT_EQ(r.symbol("f1"), 0x8000);
    EXPECT_EQ(r.symbol("__end_f1"), 0x8006);
}

TEST(Assembler, JumpRelaxationUnconditional)
{
    // A JMP over a >1 KiB gap must relax to MOV #target, PC.
    auto r = asmSource("        .text\n"
                       "        JMP far\n"
                       "        .space 2000\n"
                       "far:    NOP\n");
    // Relaxed JMP occupies 4 bytes: the gap starts at 0x8004.
    EXPECT_EQ(r.symbol("far"), 0x8000 + 4 + 2000);
    // The relaxed program contains a MOV ... PC instead of the JMP.
    bool has_jmp = false, has_br = false;
    for (const auto &s : r.relaxed.stmts) {
        if (s.kind != masm::Statement::Kind::Instr)
            continue;
        if (isa::opFormat(s.instr.op) == isa::OpFormat::Jump)
            has_jmp = true;
        if (s.instr.op == isa::Op::Mov && s.instr.dst->kind ==
                masm::OperKind::Register &&
            s.instr.dst->reg == isa::Reg::PC) {
            has_br = true;
        }
    }
    EXPECT_FALSE(has_jmp);
    EXPECT_TRUE(has_br);
}

TEST(Assembler, JumpRelaxationConditionalInverts)
{
    auto r = asmSource("        .text\n"
                       "        JEQ far\n"
                       "        .space 2000\n"
                       "far:    NOP\n");
    // JEQ -> JNE skip; MOV #far, PC; skip:
    int jne = 0, brs = 0;
    for (const auto &s : r.relaxed.stmts) {
        if (s.kind != masm::Statement::Kind::Instr)
            continue;
        if (s.instr.op == isa::Op::Jne)
            ++jne;
        if (s.instr.op == isa::Op::Mov &&
            s.instr.dst->kind == masm::OperKind::Register &&
            s.instr.dst->reg == isa::Reg::PC) {
            ++brs;
        }
    }
    EXPECT_EQ(jne, 1);
    EXPECT_EQ(brs, 1);
    EXPECT_EQ(r.symbol("far"), 0x8000 + 2 + 4 + 2000);
}

TEST(Assembler, NearJumpsStayShort)
{
    auto r = asmSource("        .text\n"
                       "loop:   DEC R5\n"
                       "        JNE loop\n"
                       "x:      NOP\n");
    EXPECT_EQ(r.symbol("x"), 0x8004);
}

TEST(Assembler, EquChains)
{
    auto r = asmSource("        .equ A, 4\n"
                       "        .equ B, A*2\n"
                       "        .text\n"
                       "        MOV #B+1, R5\n"
                       "v:      .word B\n");
    // #B+1 is symbolic -> ext word.
    for (const auto &chunk : r.image.chunks) {
        if (chunk.base == 0x8000) {
            ASSERT_GE(chunk.bytes.size(), 4u);
            EXPECT_EQ(chunk.bytes[2], 9); // 8+1
        }
    }
}

TEST(Assembler, PredefinedMmioSymbols)
{
    auto r = asmSource("        MOV.B #1, &__DONE\n"
                       "        MOV.B #1, &__CONSOLE\n");
    EXPECT_EQ(r.symbol("__DONE"), 0x0102);
}

TEST(Assembler, EntryPoint)
{
    auto r = asmSource("        .text\n"
                       "        NOP\n"
                       "__start: NOP\n");
    EXPECT_EQ(r.image.entry, 0x8002);
    auto r2 = asmSource("        NOP\n");
    EXPECT_EQ(r2.image.entry, 0x8000);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(asmSource("        MOV #1, R5\n"
                           "x:      NOP\n"
                           "x:      NOP\n"),
                 support::FatalError); // duplicate label
    EXPECT_THROW(asmSource("        JMP nowhere\n"), support::FatalError);
    EXPECT_THROW(asmSource("        .data\n        NOP\n"),
                 support::FatalError); // instr outside .text
    EXPECT_THROW(asmSource("        .func f\n        RET\n"),
                 support::FatalError); // unterminated func
    EXPECT_THROW(asmSource("        .bss\n        .word 1\n"),
                 support::FatalError);
    EXPECT_THROW(asmSource("        .byte 300\n"), support::FatalError);
}

TEST(Assembler, ListingContainsAddresses)
{
    auto r = asmSource("        .text\nstart:  NOP\n");
    std::string text = masm::listing(r);
    EXPECT_NE(text.find("0x8000"), std::string::npos);
    EXPECT_NE(text.find("start:"), std::string::npos);
}

TEST(Assembler, ExpressionDataWords)
{
    // .word of label arithmetic (as SwapRAM's metadata tables use).
    auto r = asmSource("        .text\n"
                       "        .func f\n"
                       "        MOV #0x1234, R5\n"
                       "        RET\n"
                       "        .endfunc\n"
                       "        .const\n"
                       "meta:   .word f, __end_f - f\n");
    std::uint16_t meta = r.symbol("meta");
    for (const auto &chunk : r.image.chunks) {
        if (chunk.base <= meta &&
            static_cast<size_t>(meta) + 4 <=
                chunk.base + chunk.bytes.size()) {
            size_t off = meta - chunk.base;
            std::uint16_t w0 = static_cast<std::uint16_t>(
                chunk.bytes[off] | (chunk.bytes[off + 1] << 8));
            std::uint16_t w1 = static_cast<std::uint16_t>(
                chunk.bytes[off + 2] | (chunk.bytes[off + 3] << 8));
            EXPECT_EQ(w0, 0x8000);
            EXPECT_EQ(w1, 6);
            return;
        }
    }
    FAIL() << "metadata chunk not found";
}

} // namespace
