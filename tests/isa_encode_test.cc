/**
 * @file
 * Encoder/decoder unit tests: known MSP430 encodings from the family
 * user's guide, plus an exhaustive-ish roundtrip property sweep.
 */

#include <gtest/gtest.h>

#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace {

using namespace swapram;
using isa::Instr;
using isa::Mode;
using isa::Op;
using isa::Operand;
using isa::Reg;

std::vector<std::uint16_t>
enc(const Instr &instr, std::uint16_t addr = 0x8000)
{
    return isa::encode(instr, addr);
}

Instr
fmt1(Op op, Operand src, Operand dst, bool byte = false)
{
    Instr i;
    i.op = op;
    i.byte = byte;
    i.src = src;
    i.dst = dst;
    return i;
}

Instr
fmt2(Op op, Operand dst, bool byte = false)
{
    Instr i;
    i.op = op;
    i.byte = byte;
    i.dst = dst;
    return i;
}

TEST(Encode, KnownWords)
{
    // MOV #0x1234, R15 -> 0x403F 0x1234
    auto w = enc(fmt1(Op::Mov, Operand::makeImm(0x1234),
                      Operand::makeReg(Reg::R15)));
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 0x403F);
    EXPECT_EQ(w[1], 0x1234);

    // RET == MOV @SP+, PC -> 0x4130
    w = enc(fmt1(Op::Mov, Operand::makeIndirect(Reg::SP, true),
                 Operand::makeReg(Reg::PC)));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x4130);

    // NOP == MOV #0, R3 -> 0x4303
    w = enc(fmt1(Op::Mov, Operand::makeImm(0),
                 Operand::makeReg(Reg::CG2)));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x4303);

    // ADD R5, R6 -> 0x5506
    w = enc(fmt1(Op::Add, Operand::makeReg(Reg::R5),
                 Operand::makeReg(Reg::R6)));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x5506);

    // CLRC == BIC #1, SR -> 0xC312
    w = enc(fmt1(Op::Bic, Operand::makeImm(1), Operand::makeReg(Reg::SR)));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0xC312);

    // EINT == BIS #8, SR -> 0xD232
    w = enc(fmt1(Op::Bis, Operand::makeImm(8), Operand::makeReg(Reg::SR)));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0xD232);

    // MOV.B #-1, R5 -> 0x4375 (constant generator -1, byte)
    w = enc(fmt1(Op::Mov, Operand::makeImm(0xFF),
                 Operand::makeReg(Reg::R5), true));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x4375);

    // PUSH R10 -> 0x120A
    w = enc(fmt2(Op::Push, Operand::makeReg(Reg::R10)));
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x120A);

    // CALL #0x9000 -> 0x12B0 0x9000
    w = enc(fmt2(Op::Call, Operand::makeImm(0x9000, true)));
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 0x12B0);
    EXPECT_EQ(w[1], 0x9000);

    // RETI -> 0x1300
    Instr reti;
    reti.op = Op::Reti;
    w = enc(reti);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x1300);

    // SWPB R5 -> 0x1085, RRA R5 -> 0x1105, SXT R5 -> 0x1185
    EXPECT_EQ(enc(fmt2(Op::Swpb, Operand::makeReg(Reg::R5)))[0], 0x1085);
    EXPECT_EQ(enc(fmt2(Op::Rra, Operand::makeReg(Reg::R5)))[0], 0x1105);
    EXPECT_EQ(enc(fmt2(Op::Sxt, Operand::makeReg(Reg::R5)))[0], 0x1185);
}

TEST(Encode, JumpOffsets)
{
    Instr j;
    j.op = Op::Jmp;
    j.jump_target = 0x8002; // offset 0 words
    auto w = enc(j, 0x8000);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0], 0x3C00);

    j.jump_target = 0x8000; // self-loop: offset -1
    w = enc(j, 0x8000);
    EXPECT_EQ(w[0], 0x3FFF);

    j.op = Op::Jne;
    j.jump_target = 0x8010; // offset +7
    w = enc(j, 0x8000);
    EXPECT_EQ(w[0], 0x2007);

    // Extreme ranges.
    j.op = Op::Jmp;
    j.jump_target = static_cast<std::uint16_t>(0x8000 + 2 + 2 * 511);
    EXPECT_NO_THROW(enc(j, 0x8000));
    j.jump_target = static_cast<std::uint16_t>(0x8000 + 2 - 2 * 512);
    EXPECT_NO_THROW(enc(j, 0x8000));
    j.jump_target = static_cast<std::uint16_t>(0x8000 + 2 + 2 * 512);
    EXPECT_THROW(enc(j, 0x8000), support::FatalError);
}

TEST(Encode, ConstantGenerator)
{
    for (std::uint16_t v : {0, 1, 2, 4, 8}) {
        auto w = enc(fmt1(Op::Mov, Operand::makeImm(v),
                          Operand::makeReg(Reg::R5)));
        EXPECT_EQ(w.size(), 1u) << "value " << v;
    }
    auto w = enc(fmt1(Op::Mov, Operand::makeImm(0xFFFF),
                      Operand::makeReg(Reg::R5)));
    EXPECT_EQ(w.size(), 1u);
    // Non-CG immediate needs an extension word.
    w = enc(fmt1(Op::Mov, Operand::makeImm(3), Operand::makeReg(Reg::R5)));
    EXPECT_EQ(w.size(), 2u);
    // force_ext defeats the constant generator.
    w = enc(fmt1(Op::Mov, Operand::makeImm(1, true),
                 Operand::makeReg(Reg::R5)));
    EXPECT_EQ(w.size(), 2u);
    EXPECT_EQ(w[1], 1);
}

TEST(Encode, SymbolicIsPcRelative)
{
    // MOV 0x9000, R5 assembled at 0x8000: ext word at 0x8002 holds
    // 0x9000 - 0x8002.
    auto w = enc(fmt1(Op::Mov, Operand::makeSymbolic(0x9000),
                      Operand::makeReg(Reg::R5)),
                 0x8000);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[1], static_cast<std::uint16_t>(0x9000 - 0x8002));
    // And decodes back to the same absolute EA.
    auto dec = isa::decodeAt(w.data(), 0x8000);
    EXPECT_EQ(dec.instr.src.mode, Mode::Symbolic);
    EXPECT_EQ(dec.instr.src.value, 0x9000);
}

TEST(Encode, SizeMatchesEncode)
{
    std::vector<Instr> cases = {
        fmt1(Op::Mov, Operand::makeReg(Reg::R5), Operand::makeReg(Reg::R6)),
        fmt1(Op::Add, Operand::makeImm(100), Operand::makeAbs(0x2000)),
        fmt1(Op::Xor, Operand::makeIndexed(Reg::R7, 4),
             Operand::makeIndexed(Reg::R8, 6)),
        fmt2(Op::Push, Operand::makeImm(0x1234, true)),
        fmt2(Op::Call, Operand::makeAbs(0x8100)),
    };
    for (const Instr &i : cases) {
        EXPECT_EQ(isa::encodedSize(i), 2 * enc(i).size())
            << isa::disasm(i);
    }
}

/** Random instruction generator for the roundtrip property. */
isa::Instr
randomInstr(support::Rng &rng)
{
    static const Op kOps[] = {
        Op::Mov, Op::Add, Op::Addc, Op::Subc, Op::Sub, Op::Cmp,
        Op::Dadd, Op::Bit, Op::Bic, Op::Bis, Op::Xor, Op::And,
        Op::Rrc, Op::Swpb, Op::Rra, Op::Sxt, Op::Push, Op::Call,
        Op::Jne, Op::Jeq, Op::Jnc, Op::Jc, Op::Jn, Op::Jge, Op::Jl,
        Op::Jmp,
    };
    auto random_reg = [&](bool allow_special) {
        while (true) {
            Reg r = isa::regFromIndex(static_cast<std::uint8_t>(
                rng.below(16)));
            if (!allow_special &&
                (r == Reg::PC || r == Reg::SR || r == Reg::CG2)) {
                continue;
            }
            if (r == Reg::CG2)
                continue;
            return r;
        }
    };
    auto random_src = [&]() -> Operand {
        switch (rng.below(7)) {
          case 0: return Operand::makeReg(random_reg(false));
          case 1: return Operand::makeIndexed(random_reg(false),
                                              rng.word());
          case 2: return Operand::makeSymbolic(rng.word() & 0xFFFE);
          case 3: return Operand::makeAbs(rng.word());
          case 4: return Operand::makeIndirect(random_reg(false),
                                               false);
          case 5: return Operand::makeIndirect(random_reg(false), true);
          default: return Operand::makeImm(rng.word(), true);
        }
    };
    auto random_dst = [&]() -> Operand {
        switch (rng.below(4)) {
          case 0: return Operand::makeReg(random_reg(false));
          case 1: return Operand::makeIndexed(random_reg(false),
                                              rng.word());
          case 2: return Operand::makeSymbolic(rng.word() & 0xFFFE);
          default: return Operand::makeAbs(rng.word());
        }
    };

    Instr i;
    i.op = kOps[rng.below(sizeof(kOps) / sizeof(kOps[0]))];
    switch (isa::opFormat(i.op)) {
      case isa::OpFormat::Jump:
        i.jump_target = static_cast<std::uint16_t>(
            0x8000 + 2 + 2 * (static_cast<int>(rng.below(1024)) - 512));
        break;
      case isa::OpFormat::SingleOperand:
        i.byte = isa::supportsByte(i.op) && rng.below(2);
        i.dst = (i.op == Op::Push || i.op == Op::Call) ? random_src()
                                                       : random_dst();
        if (i.op == Op::Call)
            i.byte = false;
        // PUSH/CALL of symbolic/indexed are fine; RRA-class cannot take
        // immediates (random_dst never produces them).
        break;
      case isa::OpFormat::DoubleOperand:
        i.byte = rng.below(2) != 0;
        i.src = random_src();
        i.dst = random_dst();
        break;
    }
    return i;
}

TEST(Encode, RoundTripProperty)
{
    support::Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 20000; ++trial) {
        Instr instr = randomInstr(rng);
        auto words = enc(instr, 0x8000);
        ASSERT_LE(words.size(), 3u);
        auto dec = isa::decodeAt(words.data(), 0x8000);
        auto words2 = isa::encode(dec.instr, 0x8000);
        ASSERT_EQ(words, words2)
            << "instr " << isa::disasm(instr) << " redecoded as "
            << isa::disasm(dec.instr);
        EXPECT_EQ(dec.size_bytes, 2 * words.size());
    }
}

TEST(Decode, RejectsInvalidOpcodes)
{
    // 0x0000 and format-II sub-opcode 7 are invalid.
    EXPECT_THROW(isa::decodeShape(0x0000), support::FatalError);
    EXPECT_THROW(isa::decodeShape(0x1380), support::FatalError);
}

} // namespace
