/**
 * @file
 * Superblock engine tests. The engine is a host-side optimization
 * only: every simulated observable — registers, memory, checksums,
 * cycle/stall counts, per-region access counts, interrupt and reboot
 * cycles — must be bit-identical with the engine on or off (the
 * single-step path is the oracle). The host-side superblock_* and
 * predecode hit/miss counters are the only permitted divergence.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/engine.hh"
#include "sim/fault.hh"
#include "support/platform.hh"
#include "testutil.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using isa::Reg;

sim::MachineConfig
withSuperblock(bool enabled)
{
    sim::MachineConfig config;
    config.superblock_enabled = enabled;
    // This suite pins the *block-stepped* dispatcher and its counter
    // family; the threaded tier (which replaces it when enabled) has
    // its own suite in threaded_test.cc.
    config.threaded_enabled = false;
    return config;
}

/** Every simulated Stats field (host-side fast-path counters — the
 *  predecode hit/miss and superblock_* families — excluded; the
 *  predecode *invalidation* count tracks the write stream, which is
 *  identical in both modes, so it is compared). */
void
expectSimStatsEqual(const sim::Stats &a, const sim::Stats &b,
                    const std::string &ctx)
{
    EXPECT_EQ(a.instructions, b.instructions) << ctx;
    EXPECT_EQ(a.base_cycles, b.base_cycles) << ctx;
    EXPECT_EQ(a.stall_cycles, b.stall_cycles) << ctx;
    EXPECT_EQ(a.sram.fetch, b.sram.fetch) << ctx;
    EXPECT_EQ(a.sram.read, b.sram.read) << ctx;
    EXPECT_EQ(a.sram.write, b.sram.write) << ctx;
    EXPECT_EQ(a.fram.fetch, b.fram.fetch) << ctx;
    EXPECT_EQ(a.fram.read, b.fram.read) << ctx;
    EXPECT_EQ(a.fram.write, b.fram.write) << ctx;
    EXPECT_EQ(a.mmio.fetch, b.mmio.fetch) << ctx;
    EXPECT_EQ(a.mmio.read, b.mmio.read) << ctx;
    EXPECT_EQ(a.mmio.write, b.mmio.write) << ctx;
    EXPECT_EQ(a.fram_cache_hits, b.fram_cache_hits) << ctx;
    EXPECT_EQ(a.fram_cache_misses, b.fram_cache_misses) << ctx;
    EXPECT_EQ(a.code_space_accesses, b.code_space_accesses) << ctx;
    EXPECT_EQ(a.data_space_accesses, b.data_space_accesses) << ctx;
    for (int i = 0; i < sim::kNumOwners; ++i)
        EXPECT_EQ(a.instr_by_owner[i], b.instr_by_owner[i])
            << ctx << " owner " << i;
    EXPECT_EQ(a.interrupts, b.interrupts) << ctx;
    EXPECT_EQ(a.reboots, b.reboots) << ctx;
    EXPECT_EQ(a.recovery_cycles, b.recovery_cycles) << ctx;
    EXPECT_EQ(a.predecode_invalidations, b.predecode_invalidations)
        << ctx;
}

/**
 * Within-block self-modification: the store lands on the *next*
 * instruction of the same straight-line block (patching ADD #1 into
 * ADD #2 — both constant-generator encodings — before it executes).
 * The oracle refetches and sees the patched word; the engine must
 * stop after the committed store and hand over, not execute its
 * stale decode.
 */
const char kSmcBody[] =
    "        MOV #0, R12\n"
    "        MOV &alt, &patch\n"
    "patch:  ADD #1, R12\n"
    "        JMP fin\n"
    "alt:    ADD #2, R12\n"
    "fin:\n";

TEST(Superblock, SelfModifyingStoreInOwnBlockMatchesOracle)
{
    test::MiniRun on = test::runBody(kSmcBody, withSuperblock(true));
    test::MiniRun off = test::runBody(kSmcBody, withSuperblock(false));
    ASSERT_TRUE(on.result.done);
    ASSERT_TRUE(off.result.done);
    EXPECT_EQ(on.reg(Reg::R12), 2) << "stale block decode executed";
    EXPECT_EQ(off.reg(Reg::R12), 2);
    expectSimStatsEqual(on.stats(), off.stats(), "smc");
    EXPECT_GT(on.stats().superblock_bail_smc, 0u);
    EXPECT_EQ(off.stats().superblock_dispatches, 0u);
}

/** A register-dependent store into MMIO space: the address pre-check
 *  must bail to the oracle with nothing committed, so the device sees
 *  exactly one write and the console streams match. */
const char kDynMmioBody[] =
    "        MOV #0x0100, R7\n" // console register, via register
    "        MOV #65, R6\n"
    "        MOV #3, R10\n"
    "loop:   MOV.B R6, 0(R7)\n"
    "        ADD #1, R6\n"
    "        DEC R10\n"
    "        JNZ loop\n";

TEST(Superblock, DynamicMmioOperandBailsToOracle)
{
    test::MiniRun on = test::runBody(kDynMmioBody, withSuperblock(true));
    test::MiniRun off =
        test::runBody(kDynMmioBody, withSuperblock(false));
    ASSERT_TRUE(on.result.done);
    EXPECT_EQ(on.machine->mmio().console(), "ABC");
    EXPECT_EQ(off.machine->mmio().console(), "ABC");
    expectSimStatsEqual(on.stats(), off.stats(), "dyn-mmio");
    EXPECT_GT(on.stats().superblock_bail_operand, 0u);
}

/** Timer interrupts must land on exactly the same cycle: the engine
 *  refuses any block whose worst-case bound could reach the fire
 *  cycle, single-stepping across it instead. */
const char *kTimerProgram = R"(
        .text
__start:
        MOV #0x3000, SP
        MOV #tick_isr, &0xFFF0
        EINT
        MOV #400, R10
fg_loop:
        MOV #13, R12
        ADD #29, R12
        XOR R12, &fg_acc
        DEC R10
        JNZ fg_loop
        DINT
        MOV &tick_count, R12
        MOV.B #0, &__DONE
__halt: JMP __halt

        .func tick_isr
        ADD #1, &tick_count
        RETI
        .endfunc

        .data
        .align 2
tick_count: .word 0
fg_acc:     .word 0
)";

TEST(Superblock, TimerInterruptsLandOnSameCycle)
{
    for (std::uint64_t period : {97ull, 500ull, 1024ull}) {
        sim::MachineConfig on_cfg = withSuperblock(true);
        sim::MachineConfig off_cfg = withSuperblock(false);
        on_cfg.timer_period_cycles = period;
        off_cfg.timer_period_cycles = period;
        test::MiniRun on = test::runSource(kTimerProgram, on_cfg);
        test::MiniRun off = test::runSource(kTimerProgram, off_cfg);
        ASSERT_TRUE(on.result.done);
        ASSERT_TRUE(off.result.done);
        std::string ctx = "timer period " + std::to_string(period);
        EXPECT_GT(on.stats().interrupts, 0u) << ctx;
        EXPECT_EQ(on.reg(Reg::R12), off.reg(Reg::R12)) << ctx;
        expectSimStatsEqual(on.stats(), off.stats(), ctx);
    }
}

/** Power failures must hit on exactly the same cycle — the injector's
 *  next-failure cycle bounds every dispatched block. Data lives in
 *  FRAM so progress survives the reboots. */
const char *kFaultProgram = R"(
        .text
__start:
        MOV #0x3000, SP
        MOV #300, R10
floop:  ADD #7, &acc
        XOR &acc, &mix
        DEC R10
        JNZ floop
        MOV.B #0, &__DONE
__halt: JMP __halt

        .data
        .align 2
acc:    .word 0
mix:    .word 0
)";

struct FaultRun {
    sim::Stats stats;
    std::uint16_t acc = 0;
    std::uint16_t mix = 0;
};

FaultRun
runFaulted(bool superblock)
{
    masm::LayoutSpec layout;
    layout.data_base = 0x9000;
    auto assembled = masm::assemble(masm::parse(kFaultProgram), layout);
    sim::Machine machine(withSuperblock(superblock));
    machine.load(assembled.image, 0x3000);
    sim::FaultPlan plan = sim::FaultPlan::periodic(900, 5);
    sim::FaultInjector injector(plan);
    machine.setFaultInjector(&injector);
    auto result = machine.run();
    EXPECT_TRUE(result.done);
    return {machine.stats(), machine.peek16(assembled.symbol("acc")),
            machine.peek16(assembled.symbol("mix"))};
}

TEST(Superblock, InjectedFaultsLandOnSameCycle)
{
    FaultRun on = runFaulted(true);
    FaultRun off = runFaulted(false);
    EXPECT_EQ(on.stats.reboots, 5u);
    EXPECT_GT(on.stats.superblock_dispatches, 0u);
    expectSimStatsEqual(on.stats, off.stats, "fault");
    EXPECT_EQ(on.acc, off.acc);
    EXPECT_EQ(on.mix, off.mix);
}

/** The host-side counters exist and are coherent on a plain run. */
TEST(Superblock, CountersAccountForBlockCoverage)
{
    const char body[] =
        "        MOV #50, R10\n"
        "cloop:  ADD #3, R11\n"
        "        XOR R11, R12\n"
        "        DEC R10\n"
        "        JNZ cloop\n";
    test::MiniRun run = test::runBody(body, withSuperblock(true));
    ASSERT_TRUE(run.result.done);
    const sim::Stats &s = run.stats();
    EXPECT_GT(s.superblock_blocks_built, 0u);
    EXPECT_GT(s.superblock_dispatches, 0u);
    EXPECT_GT(s.superblock_instructions, 0u);
    EXPECT_LE(s.superblock_instructions, s.instructions);
    // The loop dominates: most instructions retire in block mode.
    EXPECT_GT(s.superblock_instructions, s.instructions / 2);
}

/** Full differential sweep: every workload under every system,
 *  superblock on vs off, must agree on all simulated observables
 *  (the exact analogue of the predecode matrix test). */
TEST(Superblock, FullMatrixMatchesSingleStepOracle)
{
    const harness::System systems[] = {harness::System::Baseline,
                                       harness::System::SwapRam,
                                       harness::System::BlockCache};
    std::vector<harness::RunSpec> specs;
    std::vector<std::string> names;
    for (const workloads::Workload &w : workloads::all()) {
        for (harness::System system : systems) {
            harness::RunSpec spec = harness::sweepSpec(w, system);
            names.push_back(w.name + "/" + harness::systemName(system));
            spec.superblock = true;
            specs.push_back(spec);
            spec.superblock = false;
            specs.push_back(spec);
        }
    }
    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll(specs);
    for (std::size_t i = 0; i < outcomes.size(); i += 2) {
        const std::string &key = names[i / 2];
        ASSERT_TRUE(outcomes[i].ok()) << key;
        ASSERT_TRUE(outcomes[i + 1].ok()) << key;
        const harness::Metrics &on = outcomes[i].metrics;
        const harness::Metrics &off = outcomes[i + 1].metrics;
        ASSERT_EQ(on.fits, off.fits) << key;
        if (!on.fits)
            continue;
        ASSERT_EQ(on.done, off.done) << key;
        EXPECT_EQ(on.checksum, off.checksum) << key;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << key;
        EXPECT_EQ(on.console, off.console) << key;
        EXPECT_EQ(on.energy_pj, off.energy_pj) << key;
        expectSimStatsEqual(on.stats, off.stats, key);
    }
}

} // namespace
