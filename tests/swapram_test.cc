/**
 * @file
 * SwapRAM end-to-end tests: semantic transparency (§5.1), FRAM access
 * reduction (§5.3), eviction + call-stack integrity (§3.3), branch
 * relocation (§3.3.1), NVM fallback, blacklist, and the Split layout.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "support/logging.hh"
#include "swapram/builder.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using harness::Placement;
using harness::System;

const workloads::Workload &
crc()
{
    static workloads::Workload w = workloads::makeCrc();
    return w;
}

TEST(SwapRam, CrcChecksumMatchesGolden)
{
    auto base = harness::run(crc(), System::Baseline);
    ASSERT_TRUE(base.fits) << base.fit_note;
    ASSERT_TRUE(base.done);
    EXPECT_EQ(base.checksum, crc().expected);

    auto swap = harness::run(crc(), System::SwapRam);
    ASSERT_TRUE(swap.fits) << swap.fit_note;
    ASSERT_TRUE(swap.done);
    EXPECT_EQ(swap.checksum, crc().expected);
}

TEST(SwapRam, ReducesFramAccesses)
{
    auto base = harness::run(crc(), System::Baseline);
    auto swap = harness::run(crc(), System::SwapRam);
    ASSERT_TRUE(base.done && swap.done);
    // The paper reports an average 65% reduction; CRC specifically 75%.
    EXPECT_LT(swap.stats.framAccesses(),
              base.stats.framAccesses() * 6 / 10);
    // Most instructions execute from SRAM.
    auto sram_instr =
        swap.stats.instr_by_owner[int(sim::CodeOwner::AppSram)];
    EXPECT_GT(sram_instr, swap.stats.instructions / 2);
    // And it is faster end-to-end at 24 MHz.
    EXPECT_LT(swap.stats.totalCycles(), base.stats.totalCycles());
    // Unstalled cycles increase only modestly (Table 2).
    EXPECT_GT(swap.stats.base_cycles, base.stats.base_cycles);
    EXPECT_LT(swap.stats.base_cycles, base.stats.base_cycles * 13 / 10);
}

TEST(SwapRam, FinalMemoryStateMatchesBaseline)
{
    auto base = harness::run(crc(), System::Baseline);
    auto swap = harness::run(crc(), System::SwapRam);
    ASSERT_TRUE(base.done && swap.done);
    EXPECT_EQ(base.data_snapshot, swap.data_snapshot);
}

TEST(SwapRam, EnergyImproves)
{
    auto base = harness::run(crc(), System::Baseline);
    auto swap = harness::run(crc(), System::SwapRam);
    EXPECT_LT(swap.energy_pj, base.energy_pj);
}

// A tiny two-function program where both functions are hot.
const char *kTwoFuncs = R"(
        .text
        .func main
        PUSH R10
        MOV #200, R10
m_loop: CALL #f_one
        CALL #f_two
        DEC R10
        JNZ m_loop
        MOV &acc, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
        .func f_one
        ADD #3, &acc
        RET
        .endfunc
        .func f_two
        XOR #0x1111, &acc
        RET
        .endfunc
        .data
        .align 2
acc:    .word 0
bench_result: .word 0
)";

workloads::Workload
twoFuncWorkload()
{
    std::uint16_t acc = 0;
    for (int i = 0; i < 200; ++i) {
        acc = static_cast<std::uint16_t>(acc + 3);
        acc ^= 0x1111;
    }
    workloads::Workload w;
    w.name = "twofunc";
    w.display = "TWOFUNC";
    w.source = kTwoFuncs;
    w.expected = acc;
    return w;
}

TEST(SwapRam, HitPathBypassesHandler)
{
    auto w = twoFuncWorkload();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = System::SwapRam;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // Handler ran for the misses (3 functions + memcpy calls), but hot
    // iterations bypass it: handler instructions are a small share.
    auto handler =
        m.stats.instr_by_owner[int(sim::CodeOwner::Handler)];
    EXPECT_GT(handler, 0u);
    EXPECT_LT(handler, m.stats.instructions / 5);
}

TEST(SwapRam, EvictionKeepsExecutionCorrect)
{
    // Shrink the cache so the two callees thrash against each other.
    auto w = twoFuncWorkload();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = System::SwapRam;
    // Each callee is small; pick a cache so that main + one callee fit
    // but not everything: forces eviction traffic.
    spec.swap.cache_base = 0x2000;
    spec.swap.cache_end = 0x2030; // 48 bytes
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
}

TEST(SwapRam, OversizedFunctionRunsFromNvm)
{
    auto w = twoFuncWorkload();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = System::SwapRam;
    spec.swap.cache_base = 0x2000;
    spec.swap.cache_end = 0x2004; // 4 bytes: nothing fits
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // Everything still executes from FRAM.
    EXPECT_EQ(m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)], 0u);
    EXPECT_EQ(m.stats.instr_by_owner[int(sim::CodeOwner::Memcpy)], 0u);
}

TEST(SwapRam, RecursionIsSafe)
{
    const char *source = R"(
        .text
        .func main
        MOV #10, R12
        CALL #fib_like
        MOV R12, &bench_result
        RET
        .endfunc
        .func fib_like
        CMP #2, R12
        JHS fl_rec
        RET
fl_rec: PUSH R10
        MOV R12, R10
        SUB #1, R12
        CALL #fib_like
        MOV R12, R11
        PUSH R11
        MOV R10, R12
        SUB #2, R12
        CALL #fib_like
        POP R11
        ADD R11, R12
        POP R10
        RET
        .endfunc
        .data
        .align 2
bench_result: .word 0
)";
    // fib(10) with fib(0)=0, fib(1)=1.
    auto fib = [](auto self, int n) -> int {
        return n < 2 ? n : self(self, n - 1) + self(self, n - 2);
    };
    workloads::Workload w;
    w.name = "fib";
    w.display = "FIB";
    w.source = source;
    w.expected = static_cast<std::uint16_t>(fib(fib, 10));

    for (auto placement : {Placement::Unified, Placement::Standard}) {
        auto m = harness::run(w, System::SwapRam, placement);
        ASSERT_TRUE(m.done);
        EXPECT_EQ(m.checksum, w.expected);
    }
}

TEST(SwapRam, RelocatedBranchesWork)
{
    // f_big contains an explicit absolute branch (BR #label) that must
    // be relocated when the function is cached.
    const char *source = R"(
        .text
        .func main
        PUSH R10
        MOV #20, R10
        CLR R14
mb_loop:
        MOV R14, R12
        CALL #f_big
        MOV R12, R14
        DEC R10
        JNZ mb_loop
        MOV R14, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
        .func f_big
        BIT #1, R12
        JZ fb_even
        BR #fb_odd
fb_even:
        ADD #10, R12
        RET
fb_odd:
        ADD #101, R12
        RET
        .endfunc
        .data
        .align 2
bench_result: .word 0
)";
    std::uint16_t v = 0;
    for (int i = 0; i < 20; ++i)
        v = static_cast<std::uint16_t>(v + ((v & 1) ? 101 : 10));
    workloads::Workload w;
    w.name = "reloc";
    w.display = "RELOC";
    w.source = source;
    w.expected = v;

    auto m = harness::run(w, System::SwapRam);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // The branch must execute from SRAM (not bounce back to FRAM):
    // nearly all f_big instructions come from SRAM after the first call.
    EXPECT_GT(m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)], 50u);
}

TEST(SwapRam, RelocPassFindsBranch)
{
    std::string source = harness::startupSource(0xFF80) + R"(
        .text
        .func main
        CALL #f
        RET
        .endfunc
        .func f
        BR #f_mid
f_mid:  RET
        .endfunc
)";
    auto program = masm::parse(source);
    cache::Options opt;
    auto info = cache::build(program, masm::LayoutSpec{}, opt);
    EXPECT_EQ(info.reloc_count, 1);
    EXPECT_GT(info.handler_bytes, 100u);
}

TEST(SwapRam, BlacklistLeavesCallsDirect)
{
    auto w = twoFuncWorkload();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = System::SwapRam;
    spec.swap.blacklist = {"f_one", "f_two", "main", "__start"};
    spec.include_lib = false;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
    // Nothing cached: no SRAM execution.
    EXPECT_EQ(m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)], 0u);
    EXPECT_EQ(m.n_funcs, 0);
}

TEST(SwapRam, SplitPlacementWorks)
{
    auto m = harness::run(crc(), System::SwapRam, Placement::Split);
    ASSERT_TRUE(m.fits) << m.fit_note;
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, crc().expected);
    auto base = harness::run(crc(), System::Baseline, Placement::Standard);
    EXPECT_LT(m.stats.totalCycles(), base.stats.totalCycles());
}

TEST(SwapRam, StackPolicyStillCorrect)
{
    auto w = twoFuncWorkload();
    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = System::SwapRam;
    spec.swap.policy = cache::Policy::Stack;
    spec.swap.cache_end = 0x2040;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
}

TEST(SwapRam, BuildSizeAccounting)
{
    std::string source = harness::startupSource(0xFF80) + crc().source +
                         workloads::libSource();
    auto program = masm::parse(source);
    cache::Options opt;
    auto info = cache::build(program, masm::LayoutSpec{}, opt);
    EXPECT_GT(info.funcs.count(), 5);
    EXPECT_GT(info.metadata_bytes, 0u);
    EXPECT_EQ(info.app_text_bytes + info.runtime_text_bytes,
              info.assembled.image.text.size);
    // Handler size in the paper's reported range order (972-1844 B).
    EXPECT_GT(info.handler_bytes, 200u);
    EXPECT_LT(info.handler_bytes, 2500u);
}

} // namespace
