/**
 * @file
 * Workload validation (the paper's §5.1 "SwapRAM maintains program
 * flow", made exhaustive): every benchmark must produce its golden
 * checksum and identical final memory state under the baseline,
 * SwapRAM, and the block cache — wherever the build fits.
 *
 * Parameterized over the registry so each workload/system pair is its
 * own test case.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace swapram::workloads {
// Exposed by aes.cc for the FIPS-vector check.
void aesGoldenEncrypt(const std::uint8_t key[16],
                      const std::uint8_t in[16], std::uint8_t out[16]);
} // namespace swapram::workloads

namespace {

using namespace swapram;
using harness::Placement;
using harness::System;

class WorkloadRun
    : public ::testing::TestWithParam<std::tuple<std::string, System>>
{
};

TEST_P(WorkloadRun, ChecksumMatchesGolden)
{
    const auto &[name, system] = GetParam();
    const workloads::Workload *w = workloads::find(name);
    ASSERT_NE(w, nullptr);
    auto m = harness::run(*w, system, Placement::Unified);
    if (!m.fits)
        GTEST_SKIP() << "DNF: " << m.fit_note;
    ASSERT_TRUE(m.done) << "did not finish in the cycle budget";
    EXPECT_EQ(m.checksum, w->expected);
}

std::vector<std::tuple<std::string, System>>
allCases()
{
    std::vector<std::tuple<std::string, System>> cases;
    for (const auto &w : workloads::all()) {
        cases.push_back({w.name, System::Baseline});
        cases.push_back({w.name, System::SwapRam});
        cases.push_back({w.name, System::BlockCache});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<std::tuple<std::string, System>>
             &info)
{
    return std::get<0>(info.param) + "_" +
           harness::systemName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRun,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Workloads, FinalMemoryStateAgreesAcrossSystems)
{
    for (const auto &w : workloads::all()) {
        auto base = harness::run(w, System::Baseline);
        ASSERT_TRUE(base.fits && base.done) << w.name;
        auto swap = harness::run(w, System::SwapRam);
        if (swap.fits) {
            ASSERT_TRUE(swap.done) << w.name;
            EXPECT_EQ(base.data_snapshot, swap.data_snapshot) << w.name;
        }
        auto block = harness::run(w, System::BlockCache);
        if (block.fits) {
            ASSERT_TRUE(block.done) << w.name;
            EXPECT_EQ(base.data_snapshot, block.data_snapshot) << w.name;
        }
    }
}

TEST(Workloads, AesGoldenMatchesFipsVector)
{
    const std::uint8_t key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                  0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                  0x0c, 0x0d, 0x0e, 0x0f};
    const std::uint8_t pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                 0xcc, 0xdd, 0xee, 0xff};
    const std::uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                     0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                     0x70, 0xb4, 0xc5, 0x5a};
    std::uint8_t out[16];
    workloads::aesGoldenEncrypt(key, pt, out);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], expect[i]) << "byte " << i;
}

TEST(Workloads, RegistryHasTheNinePaperBenchmarks)
{
    const char *expected[] = {"stringsearch", "dijkstra", "crc",
                              "rc4",          "fft",      "aes",
                              "lzfx",         "bitcount", "rsa"};
    ASSERT_EQ(workloads::all().size(), 9u);
    for (const char *name : expected)
        EXPECT_NE(workloads::find(name), nullptr) << name;
    EXPECT_EQ(workloads::find("nope"), nullptr);
}

TEST(Workloads, CrcGoldenMatchesCcittCheckValue)
{
    // CRC-16/CCITT-FALSE over "123456789" is the published 0x29B1.
    std::uint16_t crc = 0xFFFF;
    for (char c : std::string("123456789"))
        crc = workloads::crcGoldenUpdate(crc,
                                         static_cast<std::uint8_t>(c));
    EXPECT_EQ(crc, 0x29B1);
}

TEST(Workloads, ArithKernelRunsEverywhere)
{
    auto w = workloads::makeArith();
    for (auto placement :
         {Placement::Unified, Placement::Standard, Placement::SramCode,
          Placement::SramAll}) {
        auto m = harness::run(w, System::Baseline, placement);
        ASSERT_TRUE(m.fits) << harness::placementName(placement) << ": "
                            << m.fit_note;
        ASSERT_TRUE(m.done);
        EXPECT_EQ(m.checksum, w.expected)
            << harness::placementName(placement);
    }
}

} // namespace
