/**
 * @file
 * Parser unit tests: operand forms, pseudo-instruction expansion,
 * directives, labels, and error cases.
 */

#include <gtest/gtest.h>

#include "masm/parser.hh"
#include "support/logging.hh"

namespace {

using namespace swapram;
using masm::Directive;
using masm::OperKind;
using masm::parse;
using masm::Statement;
using isa::Op;

const masm::AsmInstr &
onlyInstr(const masm::Program &p)
{
    const masm::AsmInstr *found = nullptr;
    for (const Statement &s : p.stmts) {
        if (s.kind == Statement::Kind::Instr) {
            EXPECT_EQ(found, nullptr) << "more than one instruction";
            found = &s.instr;
        }
    }
    EXPECT_NE(found, nullptr);
    return *found;
}

TEST(Parser, OperandForms)
{
    auto p = parse("        MOV #12, R5\n");
    const auto &i = onlyInstr(p);
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_EQ(i.src->kind, OperKind::Immediate);
    EXPECT_EQ(i.src->expr.constantFold(), 12);
    EXPECT_EQ(i.dst->kind, OperKind::Register);
    EXPECT_EQ(i.dst->reg, isa::Reg::R5);

    p = parse("        ADD.B @R4+, 2(R5)\n");
    const auto &j = onlyInstr(p);
    EXPECT_TRUE(j.byte);
    EXPECT_EQ(j.src->kind, OperKind::IndirectInc);
    EXPECT_EQ(j.dst->kind, OperKind::Indexed);
    EXPECT_EQ(j.dst->expr.constantFold(), 2);

    p = parse("        CMP &0x200, var\n");
    const auto &k = onlyInstr(p);
    EXPECT_EQ(k.src->kind, OperKind::Absolute);
    EXPECT_EQ(k.dst->kind, OperKind::SymbolicMem);
    EXPECT_TRUE(k.dst->expr.isSymbol());
}

TEST(Parser, JumpTargets)
{
    auto p = parse("        JNE loop\n");
    const auto &i = onlyInstr(p);
    EXPECT_EQ(i.op, Op::Jne);
    EXPECT_EQ(i.jump_target.symbol(), "loop");

    // Aliases.
    EXPECT_EQ(onlyInstr(parse("        JZ x\n")).op, Op::Jeq);
    EXPECT_EQ(onlyInstr(parse("        JHS x\n")).op, Op::Jc);
    EXPECT_EQ(onlyInstr(parse("        JLO x\n")).op, Op::Jnc);
}

TEST(Parser, PseudoExpansion)
{
    // RET -> MOV @SP+, PC
    auto i = onlyInstr(parse("        RET\n"));
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_EQ(i.src->kind, OperKind::IndirectInc);
    EXPECT_EQ(i.src->reg, isa::Reg::SP);
    EXPECT_EQ(i.dst->reg, isa::Reg::PC);

    // BR #label -> MOV #label, PC
    i = onlyInstr(parse("        BR #func\n"));
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_EQ(i.src->kind, OperKind::Immediate);
    EXPECT_EQ(i.dst->reg, isa::Reg::PC);

    // POP R7 -> MOV @SP+, R7
    i = onlyInstr(parse("        POP R7\n"));
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_EQ(i.dst->reg, isa::Reg::R7);

    // INC/DEC/INV/TST/CLR
    EXPECT_EQ(onlyInstr(parse("        INC R5\n")).op, Op::Add);
    EXPECT_EQ(onlyInstr(parse("        DECD R5\n")).op, Op::Sub);
    EXPECT_EQ(onlyInstr(parse("        INV R5\n")).op, Op::Xor);
    EXPECT_EQ(onlyInstr(parse("        TST R5\n")).op, Op::Cmp);
    EXPECT_EQ(onlyInstr(parse("        CLR.B buf\n")).op, Op::Mov);

    // RLA R5 -> ADD R5, R5
    i = onlyInstr(parse("        RLA R5\n"));
    EXPECT_EQ(i.op, Op::Add);
    EXPECT_EQ(i.src->reg, isa::Reg::R5);
    EXPECT_EQ(i.dst->reg, isa::Reg::R5);

    // CLRC -> BIC #1, SR
    i = onlyInstr(parse("        CLRC\n"));
    EXPECT_EQ(i.op, Op::Bic);
    EXPECT_EQ(i.dst->reg, isa::Reg::SR);
}

TEST(Parser, Directives)
{
    auto p = parse("        .text\n"
                   "        .func foo\n"
                   "        RET\n"
                   "        .endfunc\n"
                   "        .data\n"
                   "tbl:    .word 1, 2, 3+4\n"
                   "        .byte 'x'\n"
                   "        .space 16\n"
                   "        .align 2\n"
                   "msg:    .asciz \"hi\"\n"
                   "        .equ K, 10*2\n");
    int words = 0, funcs = 0;
    for (const Statement &s : p.stmts) {
        if (s.kind != Statement::Kind::Directive)
            continue;
        if (s.directive == Directive::Word) {
            ++words;
            ASSERT_EQ(s.args.size(), 3u);
            EXPECT_EQ(s.args[2].constantFold(), 7);
        }
        if (s.directive == Directive::Func) {
            ++funcs;
            EXPECT_EQ(s.name, "foo");
        }
        if (s.directive == Directive::Equ) {
            EXPECT_EQ(s.name, "K");
            EXPECT_EQ(s.args[0].constantFold(), 20);
        }
    }
    EXPECT_EQ(words, 1);
    EXPECT_EQ(funcs, 1);

    auto funcs_found = masm::findFunctions(p);
    ASSERT_EQ(funcs_found.size(), 1u);
    EXPECT_EQ(funcs_found[0].name, "foo");
}

TEST(Parser, MultipleLabels)
{
    auto p = parse("a: b:   NOP\n");
    ASSERT_GE(p.stmts.size(), 3u);
    EXPECT_EQ(p.stmts[0].label, "a");
    EXPECT_EQ(p.stmts[1].label, "b");
    EXPECT_EQ(p.stmts[2].kind, Statement::Kind::Instr);
}

TEST(Parser, ExpressionPrecedence)
{
    auto i = onlyInstr(parse("        MOV #1+2*3, R5\n"));
    EXPECT_EQ(i.src->expr.constantFold(), 7);
    i = onlyInstr(parse("        MOV #(1+2)*3, R5\n"));
    EXPECT_EQ(i.src->expr.constantFold(), 9);
    i = onlyInstr(parse("        MOV #1<<4, R5\n"));
    EXPECT_EQ(i.src->expr.constantFold(), 16);
    i = onlyInstr(parse("        MOV #-3, R5\n"));
    EXPECT_EQ(i.src->expr.constantFold(), -3);
}

TEST(Parser, Errors)
{
    EXPECT_THROW(parse("        FROB R5\n"), support::FatalError);
    EXPECT_THROW(parse("        MOV R5\n"), support::FatalError);
    EXPECT_THROW(parse("        JNE R5\n"), support::FatalError);
    EXPECT_THROW(parse("        RETI R5\n"), support::FatalError);
    EXPECT_THROW(parse("        MOV.X R5, R6\n"), support::FatalError);
    EXPECT_THROW(parse("        JMP.B x\n"), support::FatalError);
    EXPECT_THROW(parse("        .word\n"), support::FatalError);
    EXPECT_THROW(parse("        .bogus 1\n"), support::FatalError);
    EXPECT_THROW(parse("        MOV #1, R5 garbage\n"),
                 support::FatalError);
}

TEST(Parser, ProgramTextRoundTrips)
{
    const char *source = "        .text\n"
                         "        .func f\n"
                         "        MOV #10, R12\n"
                         "l1:\n"
                         "        DEC R12\n"
                         "        JNE l1\n"
                         "        RET\n"
                         "        .endfunc\n";
    auto p1 = parse(source);
    auto p2 = parse(p1.text());
    EXPECT_EQ(p1.text(), p2.text());
}

} // namespace
