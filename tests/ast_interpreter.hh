/**
 * @file
 * Independent AST-level MSP430 interpreter used as a differential
 * oracle for the encode -> decode -> execute pipeline.
 *
 * It executes the *symbolic* program (masm::Statement list) directly —
 * no instruction encoding or decoding is involved — with its own
 * implementation of the ALU, flag, and addressing-mode semantics
 * written from the MSP430 definitions. Addresses still come from the
 * assembled layout so that control flow through real return addresses
 * (CALL/RET, computed branches) works; everything else is independent
 * of the simulator, so any divergence indicates a bug in the encoder,
 * decoder, or CPU model (or here).
 */

#ifndef SWAPRAM_TESTS_AST_INTERPRETER_HH
#define SWAPRAM_TESTS_AST_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "masm/assembler.hh"

namespace swapram::test {

/** Final machine state of an interpreted run. */
struct InterpResult {
    bool done = false;
    std::array<std::uint16_t, 16> regs{};
    std::vector<std::uint8_t> memory; ///< full 64 KiB
    std::uint64_t steps = 0;
    std::string console;
};

/**
 * Interpret @p assembled from its entry point until a write to the
 * __DONE MMIO register or @p max_steps statements.
 */
InterpResult interpret(const masm::AssembleResult &assembled,
                       std::uint16_t stack_top,
                       std::uint64_t max_steps = 50'000'000);

} // namespace swapram::test

#endif // SWAPRAM_TESTS_AST_INTERPRETER_HH
