/**
 * @file
 * Block-cache baseline tests: semantic transparency, chaining/flush
 * behaviour, overheads relative to SwapRAM (the paper's §5 comparison),
 * and the block splitter.
 */

#include <gtest/gtest.h>

#include "blockcache/blocks.hh"
#include "blockcache/builder.hh"
#include "blockcache/pass.hh"
#include "harness/runner.hh"
#include "masm/parser.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using harness::Placement;
using harness::System;

const workloads::Workload &
crc()
{
    static workloads::Workload w = workloads::makeCrc();
    return w;
}

TEST(BlockCache, CrcChecksumMatchesGolden)
{
    auto m = harness::run(crc(), System::BlockCache);
    ASSERT_TRUE(m.fits) << m.fit_note;
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, crc().expected);
}

TEST(BlockCache, AvoidsAppExecutionFromFram)
{
    auto m = harness::run(crc(), System::BlockCache);
    ASSERT_TRUE(m.done);
    // The design never executes cached application code from FRAM
    // (only the first block after entry, plus the FRAM runtime).
    auto app_fram =
        m.stats.instr_by_owner[int(sim::CodeOwner::AppFram)];
    auto app_sram =
        m.stats.instr_by_owner[int(sim::CodeOwner::AppSram)];
    EXPECT_GT(app_sram, app_fram * 10);
}

TEST(BlockCache, HasHigherCycleOverheadThanSwapRam)
{
    auto base = harness::run(crc(), System::Baseline);
    auto swap = harness::run(crc(), System::SwapRam);
    auto block = harness::run(crc(), System::BlockCache);
    ASSERT_TRUE(base.done && swap.done && block.done);
    // Table 2: block caching significantly increases unstalled cycles;
    // SwapRAM's increase is marginal.
    EXPECT_GT(block.stats.base_cycles, base.stats.base_cycles * 12 / 10);
    EXPECT_GT(block.stats.base_cycles, swap.stats.base_cycles);
    // Figure 7: block caching's binary is much larger.
    EXPECT_GT(block.app_text_bytes, swap.app_text_bytes);
    EXPECT_GT(block.metadata_bytes, swap.metadata_bytes);
}

TEST(BlockCache, FinalMemoryStateMatchesBaseline)
{
    auto base = harness::run(crc(), System::Baseline);
    auto block = harness::run(crc(), System::BlockCache);
    ASSERT_TRUE(base.done && block.done);
    EXPECT_EQ(base.data_snapshot, block.data_snapshot);
}

TEST(BlockCache, FlushWhenFullStaysCorrect)
{
    // A tiny cache (4 slots) forces frequent flushes.
    harness::RunSpec spec;
    spec.workload = &crc();
    spec.system = System::BlockCache;
    spec.block.cache_base = 0x2000;
    spec.block.cache_end = 0x2100; // 256 B = 4 slots of 64
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, crc().expected);
}

TEST(BlockCache, RecursionWorks)
{
    const char *source = R"(
        .text
        .func main
        MOV #9, R12
        CALL #rsum
        MOV R12, &bench_result
        RET
        .endfunc
        .func rsum
        TST R12
        JNZ rs_rec
        RET
rs_rec: PUSH R10
        MOV R12, R10
        DEC R12
        CALL #rsum
        ADD R10, R12
        POP R10
        RET
        .endfunc
        .data
        .align 2
bench_result: .word 0
)";
    workloads::Workload w;
    w.name = "rsum";
    w.display = "RSUM";
    w.source = source;
    w.expected = 45;
    auto m = harness::run(w, System::BlockCache);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, 45);
}

TEST(BlockCache, SplitterRespectsSlotSize)
{
    // A long straight-line function must split into several blocks.
    std::string body;
    for (int i = 0; i < 60; ++i)
        body += "        ADD #3, R12\n"; // 4 bytes each, 240 B total
    std::string source = harness::startupSource(0xFF80) +
                         "        .text\n        .func main\n" + body +
                         "        MOV R12, &bench_result\n        RET\n"
                         "        .endfunc\n"
                         "        .data\n        .align 2\n"
                         "bench_result: .word 0\n";
    auto program = masm::parse(source);
    bb::Options opt;
    opt.slot_bytes = 64;
    auto transformed = bb::transform(program, opt);
    // main alone needs at least 240/64 = 4 blocks.
    EXPECT_GE(static_cast<int>(transformed.blocks.size()), 5);

    auto info = bb::build(program, masm::LayoutSpec{}, opt);
    EXPECT_GT(info.n_stubs, 0);

    workloads::Workload w;
    w.name = "straight";
    w.display = "S";
    w.source = "        .text\n        .func main\n" + body +
               "        MOV R12, &bench_result\n        RET\n"
               "        .endfunc\n"
               "        .data\n        .align 2\n"
               "bench_result: .word 0\n";
    w.expected = static_cast<std::uint16_t>(60 * 3);
    auto m = harness::run(w, System::BlockCache);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.checksum, w.expected);
}

TEST(BlockCache, Classifier)
{
    auto p = masm::parse("        JMP x\n"
                         "        JEQ x\n"
                         "        CALL #f\n"
                         "        RET\n"
                         "        BR #x\n"
                         "        MOV R5, R6\n");
    std::vector<bb::CfiKind> kinds;
    for (const auto &s : p.stmts)
        kinds.push_back(bb::classifyInstr(s.instr).kind);
    EXPECT_EQ(kinds[0], bb::CfiKind::Jump);
    EXPECT_EQ(kinds[1], bb::CfiKind::CondJump);
    EXPECT_EQ(kinds[2], bb::CfiKind::Call);
    EXPECT_EQ(kinds[3], bb::CfiKind::Ret);
    EXPECT_EQ(kinds[4], bb::CfiKind::Jump);
    EXPECT_EQ(kinds[5], bb::CfiKind::None);
}

TEST(BlockCache, IndirectCallRejected)
{
    auto p = masm::parse("        .func main\n"
                         "        CALL R5\n"
                         "        RET\n"
                         "        .endfunc\n");
    bb::Options opt;
    EXPECT_THROW(bb::transform(p, opt), support::FatalError);
}

} // namespace
