/**
 * @file
 * CPU semantics tests: each instruction class, addressing modes, flag
 * behaviour, byte operations, and control flow — executed end-to-end
 * through the assembler and machine.
 */

#include <gtest/gtest.h>

#include "testutil.hh"

namespace {

using namespace swapram;
using test::runBody;
using isa::Reg;
namespace sr = isa::sr;

TEST(CpuArith, AddCarryOverflow)
{
    auto r = runBody("        MOV #0xFFFF, R5\n"
                     "        ADD #1, R5\n"
                     "        MOV SR, R6\n" // C and Z set
                     "        MOV #0x7FFF, R7\n"
                     "        ADD #1, R7\n"
                     "        MOV SR, R8\n"); // V and N set
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R5), 0);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kC);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kZ);
    EXPECT_EQ(r.reg(Reg::R7), 0x8000);
    EXPECT_TRUE(r.reg(Reg::R8) & sr::kV);
    EXPECT_TRUE(r.reg(Reg::R8) & sr::kN);
    EXPECT_FALSE(r.reg(Reg::R8) & sr::kC);
}

TEST(CpuArith, SubBorrowSemantics)
{
    // MSP430: C is NOT-borrow. 5-3 sets C; 3-5 clears C.
    auto r = runBody("        MOV #5, R5\n"
                     "        SUB #3, R5\n"
                     "        MOV SR, R6\n"
                     "        MOV #3, R7\n"
                     "        SUB #5, R7\n"
                     "        MOV SR, R8\n");
    EXPECT_EQ(r.reg(Reg::R5), 2);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kC);
    EXPECT_EQ(r.reg(Reg::R7), 0xFFFE);
    EXPECT_FALSE(r.reg(Reg::R8) & sr::kC);
    EXPECT_TRUE(r.reg(Reg::R8) & sr::kN);
}

TEST(CpuArith, AddcSubcChains)
{
    // 32-bit add: 0x0001FFFF + 0x00010001 = 0x00030000.
    auto r = runBody("        MOV #0xFFFF, R5\n" // low
                     "        MOV #1, R6\n"      // high
                     "        ADD #1, R5\n"
                     "        ADDC #1, R6\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x0000);
    EXPECT_EQ(r.reg(Reg::R6), 0x0003);
}

TEST(CpuArith, CmpSetsFlagsOnly)
{
    auto r = runBody("        MOV #7, R5\n"
                     "        CMP #7, R5\n"
                     "        MOV SR, R6\n");
    EXPECT_EQ(r.reg(Reg::R5), 7);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kZ);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kC);
}

TEST(CpuArith, DaddBcd)
{
    auto r = runBody("        CLRC\n"
                     "        MOV #0x1299, R5\n"
                     "        MOV #0x0001, R6\n"
                     "        DADD R6, R5\n"); // 1299 + 1 = 1300 (BCD)
    EXPECT_EQ(r.reg(Reg::R5), 0x1300);
}

TEST(CpuLogic, AndBitXorBicBis)
{
    auto r = runBody("        MOV #0x0F0F, R5\n"
                     "        AND #0x00FF, R5\n"
                     "        MOV SR, R6\n"
                     "        MOV #0xFF00, R7\n"
                     "        BIT #0x00FF, R7\n"
                     "        MOV SR, R8\n"
                     "        MOV #0x1234, R9\n"
                     "        XOR #0xFFFF, R9\n"
                     "        MOV #0x00F0, R10\n"
                     "        BIC #0x0030, R10\n"
                     "        BIS #0x0003, R10\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x000F);
    EXPECT_TRUE(r.reg(Reg::R6) & sr::kC); // C = !Z for AND
    EXPECT_TRUE(r.reg(Reg::R8) & sr::kZ); // BIT found no overlap
    EXPECT_FALSE(r.reg(Reg::R8) & sr::kC);
    EXPECT_EQ(r.reg(Reg::R9), 0xEDCB);
    EXPECT_EQ(r.reg(Reg::R10), 0x00C3);
}

TEST(CpuShift, RraRrcRlaRlc)
{
    auto r = runBody("        MOV #0x8003, R5\n"
                     "        RRA R5\n" // arithmetic: keeps sign
                     "        MOV #0x0001, R6\n"
                     "        SETC\n"
                     "        RRC R6\n" // 0x8000, C=1
                     "        MOV SR, R7\n"
                     "        MOV #0x4000, R8\n"
                     "        RLA R8\n"); // 0x8000
    EXPECT_EQ(r.reg(Reg::R5), 0xC001);
    EXPECT_EQ(r.reg(Reg::R6), 0x8000);
    EXPECT_TRUE(r.reg(Reg::R7) & sr::kC);
    EXPECT_EQ(r.reg(Reg::R8), 0x8000);
}

TEST(CpuByte, ByteOpsClearHighByte)
{
    auto r = runBody("        MOV #0x1234, R5\n"
                     "        ADD.B #1, R5\n" // byte add clears high
                     "        MOV #0x12FF, R6\n"
                     "        ADD.B #1, R6\n"
                     "        MOV SR, R7\n"); // byte carry + zero
    EXPECT_EQ(r.reg(Reg::R5), 0x0035);
    EXPECT_EQ(r.reg(Reg::R6), 0x0000);
    EXPECT_TRUE(r.reg(Reg::R7) & sr::kC);
    EXPECT_TRUE(r.reg(Reg::R7) & sr::kZ);
}

TEST(CpuByte, SwpbSxt)
{
    auto r = runBody("        MOV #0x1234, R5\n"
                     "        SWPB R5\n"
                     "        MOV #0x0080, R6\n"
                     "        SXT R6\n"
                     "        MOV #0x007F, R7\n"
                     "        SXT R7\n");
    EXPECT_EQ(r.reg(Reg::R5), 0x3412);
    EXPECT_EQ(r.reg(Reg::R6), 0xFF80);
    EXPECT_EQ(r.reg(Reg::R7), 0x007F);
}

TEST(CpuMem, MemoryAddressing)
{
    auto r = runBody("        MOV #0x2100, R5\n"
                     "        MOV #0xBEEF, 0(R5)\n"
                     "        MOV #0xCAFE, 2(R5)\n"
                     "        MOV @R5+, R6\n"
                     "        MOV @R5, R7\n"
                     "        MOV &0x2102, R8\n"
                     "        MOV #0xAA, R9\n"
                     "        MOV.B R9, &0x2105\n"
                     "        MOV.B &0x2105, R10\n");
    EXPECT_EQ(r.reg(Reg::R6), 0xBEEF);
    EXPECT_EQ(r.reg(Reg::R5), 0x2102);
    EXPECT_EQ(r.reg(Reg::R7), 0xCAFE);
    EXPECT_EQ(r.reg(Reg::R8), 0xCAFE);
    EXPECT_EQ(r.reg(Reg::R10), 0xAA);
}

TEST(CpuMem, SymbolicAddressing)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV var, R5\n"
                             "        MOV #7, var2\n"
                             "        MOV var2, R6\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .data\n"
                             "var:    .word 0x5678\n"
                             "var2:   .word 0\n");
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R5), 0x5678);
    EXPECT_EQ(r.reg(Reg::R6), 7);
}

TEST(CpuFlow, PushPopCallRet)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV #0x1111, R5\n"
                             "        PUSH R5\n"
                             "        MOV #0x2222, R5\n"
                             "        CALL #sub\n"
                             "        POP R5\n"
                             "        MOV.B #0, &__DONE\n"
                             "halt:   JMP halt\n"
                             "        .func sub\n"
                             "        MOV #0x3333, R6\n"
                             "        RET\n"
                             "        .endfunc\n");
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R6), 0x3333);
    EXPECT_EQ(r.reg(Reg::R5), 0x1111); // popped original
    EXPECT_EQ(r.reg(Reg::SP), 0x3000); // balanced
}

TEST(CpuFlow, IndirectCallThroughMemoryCell)
{
    // CALL &cell: the mechanism SwapRAM's redirection uses.
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        CALL &cell\n"
                             "        MOV.B #0, &__DONE\n"
                             "halt:   JMP halt\n"
                             "        .func target\n"
                             "        MOV #0x77, R9\n"
                             "        RET\n"
                             "        .endfunc\n"
                             "        .const\n"
                             "cell:   .word target\n");
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R9), 0x77);
}

TEST(CpuFlow, SignedAndUnsignedBranches)
{
    // JL is signed; JLO (JNC) is unsigned.
    auto r = runBody("        MOV #0, R10\n"
                     "        MOV #0xFFFE, R5\n" // -2 signed, 65534 unsigned
                     "        CMP #1, R5\n"      // compare against 1
                     "        JL siglt\n"
                     "        JMP next\n"
                     "siglt:  BIS #1, R10\n"     // -2 < 1 signed
                     "next:   CMP #1, R5\n"
                     "        JLO unslt\n"
                     "        JMP done1\n"
                     "unslt:  BIS #2, R10\n"     // not taken unsigned
                     "done1:  NOP\n");
    EXPECT_EQ(r.reg(Reg::R10), 1);
}

TEST(CpuFlow, LoopCycleCount)
{
    // MOV #5,R5 (2cy) ; loop: DEC R5 (1cy); JNE loop (2cy).
    // 2 + 5*(1+2) = 17 cycles before the epilogue.
    auto r = runBody("        MOV #5, R5\n"
                     "loop:   DEC R5\n"
                     "        JNE loop\n");
    // Epilogue: MOV #0x3000,SP (2), MOV.B #0,&__DONE (4).
    // Prologue counted in the 2 above? MOV #0x3000,SP is the first
    // instruction of the wrapper (2 cycles, immediate ext word).
    // Total = 2 (SP) + 2 + 15 + 4 (done write) = 23.
    EXPECT_EQ(r.stats().base_cycles, 23u);
    // MOV SP, MOV #5, 5 x (DEC + JNE), done write = 13 instructions.
    EXPECT_EQ(r.stats().instructions, 13u);
}

TEST(CpuFlow, WritesToR3Discarded)
{
    auto r = runBody("        NOP\n" // MOV #0, R3
                     "        MOV #1, R5\n");
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.reg(Reg::R5), 1);
}

TEST(CpuMisc, PostIncrementByte)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV #bytes, R5\n"
                             "        MOV.B @R5+, R6\n"
                             "        MOV.B @R5+, R7\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .const\n"
                             "bytes:  .byte 0x11, 0x22\n");
    EXPECT_EQ(r.reg(Reg::R6), 0x11);
    EXPECT_EQ(r.reg(Reg::R7), 0x22);
}

TEST(CpuMisc, ConsoleOutput)
{
    auto r = runBody("        MOV.B #'H', &__CONSOLE\n"
                     "        MOV.B #'i', &__CONSOLE\n");
    EXPECT_EQ(r.machine->mmio().console(), "Hi");
}

TEST(CpuMisc, ExitCode)
{
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV.B #42, &__DONE\n");
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.result.exit_code, 42);
}

} // namespace
