/**
 * @file
 * Predecode fast-path tests. The cache is a host-side optimization
 * only: simulated results (registers, memory, checksums, cycle and
 * stall counts) must be bit-identical with the cache on or off. The
 * dangerous case is self-modifying code — SwapRAM copies function
 * bodies into SRAM at runtime, overwriting words whose decode may be
 * cached — so every test here runs with predecode enabled and with it
 * disabled (the always-decode oracle) and demands identical results.
 */

#include <gtest/gtest.h>

#include "harness/engine.hh"
#include "testutil.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using isa::Reg;

sim::MachineConfig
withPredecode(bool enabled)
{
    sim::MachineConfig config;
    config.predecode_enabled = enabled;
    // These tests assert the per-step predecode counters; superblock
    // dispatch (tested separately in superblock_test.cc) retires most
    // instructions without consulting the predecode cache.
    config.superblock_enabled = false;
    return config;
}

/**
 * Direct-store self-modification. `inner` is called twice so its
 * decode is hot in the predecode cache, then one word of it is
 * overwritten through the bus (the donor word comes from a
 * never-executed instruction), and it is called again. With correct
 * write invalidation the third call re-decodes and adds 2; a stale
 * entry would add 1.
 */
const char kSelfModifyingBody[] =
    "        MOV #0, R12\n"
    "        CALL #inner\n"
    "        CALL #inner\n"
    "        MOV &alt, &patch\n"
    "        CALL #inner\n"
    "        JMP done\n"
    "inner:\n"
    "patch:  ADD #1, R12\n"
    "        RET\n"
    "alt:    ADD #2, R12\n"
    "done:\n";

TEST(Predecode, StoreIntoCachedInstructionForcesRedecode)
{
    test::MiniRun run =
        test::runBody(kSelfModifyingBody, withPredecode(true));
    EXPECT_EQ(run.reg(Reg::R12), 4) << "stale decode executed";
    EXPECT_GT(run.stats().predecode_hits, 0u);
    EXPECT_GT(run.stats().predecode_invalidations, 0u);
}

TEST(Predecode, SelfModifyingCodeMatchesDisabledCacheOracle)
{
    test::MiniRun on =
        test::runBody(kSelfModifyingBody, withPredecode(true));
    test::MiniRun off =
        test::runBody(kSelfModifyingBody, withPredecode(false));
    EXPECT_EQ(off.stats().predecode_hits, 0u);
    EXPECT_EQ(on.reg(Reg::R12), off.reg(Reg::R12));
    EXPECT_EQ(on.stats().instructions, off.stats().instructions);
    EXPECT_EQ(on.stats().base_cycles, off.stats().base_cycles);
    EXPECT_EQ(on.stats().stall_cycles, off.stats().stall_cycles);
}

/** Same store-into-code hazard, but with the code resident in SRAM —
 *  the exact shape SwapRAM produces after a copy-in. */
TEST(Predecode, SramResidentCodeIsInvalidatedToo)
{
    masm::LayoutSpec layout;
    layout.text_base = 0x2400; // SRAM; stack grows down from 0x3000
    test::MiniRun on = test::runBody(kSelfModifyingBody,
                                     withPredecode(true), layout);
    test::MiniRun off = test::runBody(kSelfModifyingBody,
                                      withPredecode(false), layout);
    EXPECT_EQ(on.reg(Reg::R12), 4);
    EXPECT_EQ(off.reg(Reg::R12), 4);
    EXPECT_GT(on.stats().predecode_invalidations, 0u);
    EXPECT_EQ(on.stats().base_cycles, off.stats().base_cycles);
    EXPECT_EQ(on.stats().stall_cycles, off.stats().stall_cycles);
}

/** Two callees that thrash through a cache sized for only one of
 *  them, so every iteration copies a fresh body over SRAM words the
 *  previous call just executed. */
const char kThrashSource[] = R"(
        .text
        .func main
        PUSH R10
        MOV #200, R10
m_loop: CALL #f_one
        CALL #f_two
        DEC R10
        JNZ m_loop
        MOV &acc, R12
        MOV R12, &bench_result
        POP R10
        RET
        .endfunc
        .func f_one
        ADD #3, &acc
        ADD #5, &acc
        ADD #7, &acc
        RET
        .endfunc
        .func f_two
        XOR #0x1111, &acc
        ADD #9, &acc
        XOR #0x0707, &acc
        RET
        .endfunc
        .data
        .align 2
acc:    .word 0
bench_result: .word 0
)";

/**
 * SwapRAM copy-in over previously executed SRAM — the load-bearing
 * invalidation case. f_one and f_two evict each other every loop
 * iteration, so the runtime repeatedly memcpy's a different function
 * body over SRAM addresses whose decode was hot one call earlier. A
 * stale decode would execute the wrong instruction stream; the
 * disabled-cache run is the oracle.
 */
TEST(Predecode, SwapRamCopyInOverExecutedSramMatchesOracle)
{
    std::uint16_t acc = 0;
    for (int i = 0; i < 200; ++i) {
        acc = static_cast<std::uint16_t>(acc + 15);
        acc ^= 0x1111;
        acc = static_cast<std::uint16_t>(acc + 9);
        acc ^= 0x0707;
    }
    workloads::Workload w;
    w.name = "thrash";
    w.display = "THRASH";
    w.source = kThrashSource;
    w.expected = acc;

    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.observe.swap_timeline = true;
    // Only one callee fits at a time; each call evicts the other.
    spec.swap.cache_base = 0x2000;
    spec.swap.cache_end = 0x2020; // 32 bytes: one callee at a time
    spec.superblock = false;      // asserting predecode counters

    harness::RunSpec oracle = spec;
    oracle.predecode = false;

    harness::Metrics on = harness::runOne(spec);
    harness::Metrics off = harness::runOne(oracle);

    ASSERT_TRUE(on.fits && on.done);
    EXPECT_EQ(on.checksum, w.expected) << "stale decode executed";
    EXPECT_GT(on.swap_summary.copy_ins, 100u) << "test needs thrash";
    EXPECT_GT(on.swap_summary.evictions, 100u);
    EXPECT_GT(on.stats.predecode_hits, 0u);
    EXPECT_GT(on.stats.predecode_invalidations, 0u);
    EXPECT_EQ(off.stats.predecode_hits, 0u);

    EXPECT_EQ(on.checksum, off.checksum);
    EXPECT_EQ(on.stats.instructions, off.stats.instructions);
    EXPECT_EQ(on.stats.base_cycles, off.stats.base_cycles);
    EXPECT_EQ(on.stats.stall_cycles, off.stats.stall_cycles);
    EXPECT_EQ(on.swap_summary.copy_ins, off.swap_summary.copy_ins);
    EXPECT_EQ(on.swap_summary.evictions, off.swap_summary.evictions);
}

/** Full differential sweep: every workload under every system, cache
 *  on vs off, must agree on all simulated observables. */
TEST(Predecode, FullMatrixMatchesDisabledCacheOracle)
{
    const harness::System systems[] = {harness::System::Baseline,
                                       harness::System::SwapRam,
                                       harness::System::BlockCache};
    std::vector<harness::RunSpec> specs;
    std::vector<std::string> names;
    for (const workloads::Workload &w : workloads::all()) {
        for (harness::System system : systems) {
            harness::RunSpec spec = harness::sweepSpec(w, system);
            names.push_back(w.name + "/" + harness::systemName(system));
            specs.push_back(spec);
            spec.predecode = false;
            specs.push_back(spec);
        }
    }
    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll(specs);
    for (std::size_t i = 0; i < outcomes.size(); i += 2) {
        const std::string &key = names[i / 2];
        ASSERT_TRUE(outcomes[i].ok()) << key;
        ASSERT_TRUE(outcomes[i + 1].ok()) << key;
        const harness::Metrics &on = outcomes[i].metrics;
        const harness::Metrics &off = outcomes[i + 1].metrics;
        ASSERT_EQ(on.fits, off.fits) << key;
        if (!on.fits)
            continue;
        EXPECT_EQ(on.checksum, off.checksum) << key;
        EXPECT_EQ(on.stats.instructions, off.stats.instructions) << key;
        EXPECT_EQ(on.stats.base_cycles, off.stats.base_cycles) << key;
        EXPECT_EQ(on.stats.stall_cycles, off.stats.stall_cycles) << key;
        EXPECT_EQ(on.energy_pj, off.energy_pj) << key;
    }
}

} // namespace
