/**
 * @file
 * Property/fuzz tests: generate random programs — a set of functions
 * with random ALU bodies mutating global state, wired into a random
 * acyclic call graph with random loops — and require that SwapRAM and
 * the block cache produce *exactly* the final memory state and
 * checksum of baseline execution, across randomized cache geometries.
 *
 * The baseline is the oracle (no hand-written golden needed), so this
 * exercises the caching runtimes against code shapes the nine curated
 * benchmarks never produce: deep call chains, recursion, hot/cold
 * mixes, many relocatable branches.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fuzz_programs.hh"
#include "harness/runner.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

class FuzzSystems : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FuzzSystems, CachingSystemsMatchBaseline)
{
    std::uint32_t seed = GetParam();
    auto w = test::randomProgram(seed);
    support::Rng rng(seed ^ 0xDECAF);

    harness::RunSpec base_spec;
    base_spec.workload = &w;
    base_spec.system = harness::System::Baseline;
    base_spec.include_lib = false;
    auto base = harness::runOne(base_spec);
    ASSERT_TRUE(base.fits) << base.fit_note;
    ASSERT_TRUE(base.done);

    // SwapRAM under three random cache geometries + both policies.
    for (int trial = 0; trial < 3; ++trial) {
        harness::RunSpec spec = base_spec;
        spec.system = harness::System::SwapRam;
        std::uint16_t size = static_cast<std::uint16_t>(
            16 + 2 * rng.below(1024));
        spec.swap.cache_base = 0x2000;
        spec.swap.cache_end =
            static_cast<std::uint16_t>(0x2000 + (size & ~1));
        spec.swap.policy = (trial & 1) ? cache::Policy::Stack
                                       : cache::Policy::CircularQueue;
        auto m = harness::runOne(spec);
        ASSERT_TRUE(m.done) << "seed " << seed << " cache " << size;
        EXPECT_EQ(m.checksum, base.checksum)
            << "seed " << seed << " cache " << size;
        EXPECT_EQ(m.data_snapshot, base.data_snapshot)
            << "seed " << seed << " cache " << size;
    }

    // Block cache under two random slot geometries.
    for (int trial = 0; trial < 2; ++trial) {
        harness::RunSpec spec = base_spec;
        spec.system = harness::System::BlockCache;
        spec.block.cache_base = 0x2000;
        std::uint16_t slots = static_cast<std::uint16_t>(
            2 + rng.below(30));
        spec.block.slot_bytes = 64;
        spec.block.cache_end =
            static_cast<std::uint16_t>(0x2000 + 64 * slots);
        auto m = harness::runOne(spec);
        ASSERT_TRUE(m.done) << "seed " << seed;
        EXPECT_EQ(m.checksum, base.checksum) << "seed " << seed;
        EXPECT_EQ(m.data_snapshot, base.data_snapshot)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FuzzSystems,
                         ::testing::Range(1u, 25u));

} // namespace
