/**
 * @file
 * Property/fuzz tests: generate random programs — a set of functions
 * with random ALU bodies mutating global state, wired into a random
 * acyclic call graph with random loops — and require that SwapRAM and
 * the block cache produce *exactly* the final memory state and
 * checksum of baseline execution, across randomized cache geometries.
 *
 * The baseline is the oracle (no hand-written golden needed), so this
 * exercises the caching runtimes against code shapes the nine curated
 * benchmarks never produce: deep call chains, recursion, hot/cold
 * mixes, many relocatable branches.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fuzz_programs.hh"
#include "harness/engine.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

class FuzzSystems : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FuzzSystems, CachingSystemsMatchBaseline)
{
    std::uint32_t seed = GetParam();
    auto w = test::randomProgram(seed);
    support::Rng rng(seed ^ 0xDECAF);

    // All six runs per seed (baseline oracle + 3 SwapRAM geometries +
    // 2 block-cache geometries) are independent, so the whole case is
    // one engine batch; asserts happen after it drains.
    harness::RunSpec base_spec;
    base_spec.workload = &w;
    base_spec.system = harness::System::Baseline;
    base_spec.include_lib = false;

    std::vector<harness::RunSpec> specs;
    std::vector<std::string> notes;
    specs.push_back(base_spec);
    notes.push_back("baseline");

    // SwapRAM under three random cache geometries + both policies.
    for (int trial = 0; trial < 3; ++trial) {
        harness::RunSpec spec = base_spec;
        spec.system = harness::System::SwapRam;
        std::uint16_t size = static_cast<std::uint16_t>(
            16 + 2 * rng.below(1024));
        spec.swap.cache_base = 0x2000;
        spec.swap.cache_end =
            static_cast<std::uint16_t>(0x2000 + (size & ~1));
        spec.swap.policy = (trial & 1) ? cache::Policy::Stack
                                       : cache::Policy::CircularQueue;
        specs.push_back(spec);
        notes.push_back("swapram cache " + std::to_string(size));
    }

    // Block cache under two random slot geometries.
    for (int trial = 0; trial < 2; ++trial) {
        harness::RunSpec spec = base_spec;
        spec.system = harness::System::BlockCache;
        spec.block.cache_base = 0x2000;
        std::uint16_t slots = static_cast<std::uint16_t>(
            2 + rng.below(30));
        spec.block.slot_bytes = 64;
        spec.block.cache_end =
            static_cast<std::uint16_t>(0x2000 + 64 * slots);
        specs.push_back(spec);
        notes.push_back("block slots " + std::to_string(slots));
    }

    // Superblock differential: every run again with block dispatch
    // off. The single-step oracle must produce byte-identical results
    // on code shapes the curated workloads never exercise.
    const std::size_t n = specs.size();
    for (std::size_t i = 0; i < n; ++i) {
        harness::RunSpec twin = specs[i];
        specs[i].superblock = true;
        twin.superblock = false;
        specs.push_back(twin);
    }

    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll(specs);

    ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error_text;
    const harness::Metrics &base = outcomes[0].metrics;
    ASSERT_TRUE(base.fits) << base.fit_note;
    ASSERT_TRUE(base.done);

    for (std::size_t i = 1; i < n; ++i) {
        std::string ctx =
            "seed " + std::to_string(seed) + " " + notes[i];
        ASSERT_TRUE(outcomes[i].ok())
            << ctx << ": " << outcomes[i].error_text;
        const harness::Metrics &m = outcomes[i].metrics;
        ASSERT_TRUE(m.done) << ctx;
        EXPECT_EQ(m.checksum, base.checksum) << ctx;
        EXPECT_EQ(m.data_snapshot, base.data_snapshot) << ctx;
    }

    for (std::size_t i = 0; i < n; ++i) {
        std::string ctx = "seed " + std::to_string(seed) + " " +
                          notes[i] + " superblock-off twin";
        ASSERT_TRUE(outcomes[n + i].ok())
            << ctx << ": " << outcomes[n + i].error_text;
        const harness::Metrics &on = outcomes[i].metrics;
        const harness::Metrics &off = outcomes[n + i].metrics;
        ASSERT_EQ(on.done, off.done) << ctx;
        EXPECT_EQ(on.checksum, off.checksum) << ctx;
        EXPECT_EQ(on.data_snapshot, off.data_snapshot) << ctx;
        EXPECT_EQ(on.console, off.console) << ctx;
        EXPECT_EQ(on.stats.instructions, off.stats.instructions) << ctx;
        EXPECT_EQ(on.stats.base_cycles, off.stats.base_cycles) << ctx;
        EXPECT_EQ(on.stats.stall_cycles, off.stats.stall_cycles) << ctx;
        EXPECT_EQ(on.stats.fram.total(), off.stats.fram.total()) << ctx;
        EXPECT_EQ(on.stats.sram.total(), off.stats.sram.total()) << ctx;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FuzzSystems,
                         ::testing::Range(1u, 25u));

} // namespace
