/**
 * @file
 * Property/fuzz tests: generate random programs — a set of functions
 * with random ALU bodies mutating global state, wired into a random
 * acyclic call graph with random loops — and require that SwapRAM and
 * the block cache produce *exactly* the final memory state and
 * checksum of baseline execution, across randomized cache geometries.
 *
 * The baseline is the oracle (no hand-written golden needed), so this
 * exercises the caching runtimes against code shapes the nine curated
 * benchmarks never produce: deep call chains, recursion, hot/cold
 * mixes, many relocatable branches.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "fuzz_programs.hh"
#include "harness/engine.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

class FuzzSystems : public ::testing::TestWithParam<std::uint32_t>
{
};

/** Execution-tier twin comparison: every simulated observable must be
 *  bit-identical across the host-side dispatch tiers. */
void
expectTierStatsEqual(const harness::Metrics &a,
                     const harness::Metrics &b, const std::string &ctx)
{
    ASSERT_EQ(a.done, b.done) << ctx;
    EXPECT_EQ(a.checksum, b.checksum) << ctx;
    EXPECT_EQ(a.data_snapshot, b.data_snapshot) << ctx;
    EXPECT_EQ(a.console, b.console) << ctx;
    EXPECT_EQ(a.stats.instructions, b.stats.instructions) << ctx;
    EXPECT_EQ(a.stats.base_cycles, b.stats.base_cycles) << ctx;
    EXPECT_EQ(a.stats.stall_cycles, b.stats.stall_cycles) << ctx;
    EXPECT_EQ(a.stats.fram.total(), b.stats.fram.total()) << ctx;
    EXPECT_EQ(a.stats.sram.total(), b.stats.sram.total()) << ctx;
    EXPECT_EQ(a.stats.fram_cache_hits, b.stats.fram_cache_hits) << ctx;
    EXPECT_EQ(a.stats.fram_cache_misses, b.stats.fram_cache_misses)
        << ctx;
    EXPECT_EQ(a.stats.code_space_accesses, b.stats.code_space_accesses)
        << ctx;
    EXPECT_EQ(a.stats.data_space_accesses, b.stats.data_space_accesses)
        << ctx;
    EXPECT_EQ(a.stats.interrupts, b.stats.interrupts) << ctx;
}

/** One fuzz seed across all systems/geometries, each run three ways:
 *  threaded-code dispatch, block-stepped superblock dispatch, and the
 *  always-decode single-step oracle (predecode off too). */
void
fuzzSystemsSeed(std::uint32_t seed)
{
    auto w = test::randomProgram(seed);
    support::Rng rng(seed ^ 0xDECAF);

    // All six runs per seed (baseline oracle + 3 SwapRAM geometries +
    // 2 block-cache geometries) are independent, so the whole case is
    // one engine batch; asserts happen after it drains.
    harness::RunSpec base_spec;
    base_spec.workload = &w;
    base_spec.system = harness::System::Baseline;
    base_spec.include_lib = false;

    std::vector<harness::RunSpec> specs;
    std::vector<std::string> notes;
    specs.push_back(base_spec);
    notes.push_back("baseline");

    // SwapRAM under three random cache geometries + both policies.
    for (int trial = 0; trial < 3; ++trial) {
        harness::RunSpec spec = base_spec;
        spec.system = harness::System::SwapRam;
        std::uint16_t size = static_cast<std::uint16_t>(
            16 + 2 * rng.below(1024));
        spec.swap.cache_base = 0x2000;
        spec.swap.cache_end =
            static_cast<std::uint16_t>(0x2000 + (size & ~1));
        spec.swap.policy = (trial & 1) ? cache::Policy::Stack
                                       : cache::Policy::CircularQueue;
        specs.push_back(spec);
        notes.push_back("swapram cache " + std::to_string(size));
    }

    // Block cache under two random slot geometries.
    for (int trial = 0; trial < 2; ++trial) {
        harness::RunSpec spec = base_spec;
        spec.system = harness::System::BlockCache;
        spec.block.cache_base = 0x2000;
        std::uint16_t slots = static_cast<std::uint16_t>(
            2 + rng.below(30));
        spec.block.slot_bytes = 64;
        spec.block.cache_end =
            static_cast<std::uint16_t>(0x2000 + 64 * slots);
        specs.push_back(spec);
        notes.push_back("block slots " + std::to_string(slots));
    }

    // Tier differential: every run three ways — threaded-code
    // dispatch, block-stepped superblock dispatch, and the
    // always-decode single-step oracle. All three must produce
    // byte-identical results on code shapes the curated workloads
    // never exercise.
    const std::size_t n = specs.size();
    for (std::size_t i = 0; i < n; ++i) {
        specs[i].superblock = true;
        specs[i].threaded = true;
        harness::RunSpec blockstep = specs[i];
        blockstep.threaded = false;
        specs.push_back(blockstep);
    }
    for (std::size_t i = 0; i < n; ++i) {
        harness::RunSpec oracle = specs[i];
        oracle.superblock = false;
        oracle.threaded = false;
        oracle.predecode = false;
        specs.push_back(oracle);
    }

    std::vector<harness::RunOutcome> outcomes =
        harness::Engine().runAll(specs);

    ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error_text;
    const harness::Metrics &base = outcomes[0].metrics;
    ASSERT_TRUE(base.fits) << base.fit_note;
    ASSERT_TRUE(base.done);

    for (std::size_t i = 1; i < n; ++i) {
        std::string ctx =
            "seed " + std::to_string(seed) + " " + notes[i];
        ASSERT_TRUE(outcomes[i].ok())
            << ctx << ": " << outcomes[i].error_text;
        const harness::Metrics &m = outcomes[i].metrics;
        ASSERT_TRUE(m.done) << ctx;
        EXPECT_EQ(m.checksum, base.checksum) << ctx;
        EXPECT_EQ(m.data_snapshot, base.data_snapshot) << ctx;
    }

    for (std::size_t i = 0; i < n; ++i) {
        std::string base_ctx =
            "seed " + std::to_string(seed) + " " + notes[i];
        ASSERT_TRUE(outcomes[n + i].ok())
            << base_ctx << ": " << outcomes[n + i].error_text;
        ASSERT_TRUE(outcomes[2 * n + i].ok())
            << base_ctx << ": " << outcomes[2 * n + i].error_text;
        const harness::Metrics &threaded = outcomes[i].metrics;
        const harness::Metrics &blockstep = outcomes[n + i].metrics;
        const harness::Metrics &oracle = outcomes[2 * n + i].metrics;
        expectTierStatsEqual(threaded, blockstep,
                             base_ctx + " threaded vs block-stepped");
        expectTierStatsEqual(threaded, oracle,
                             base_ctx + " threaded vs oracle");
    }
}

TEST_P(FuzzSystems, CachingSystemsMatchBaseline)
{
    fuzzSystemsSeed(GetParam());
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FuzzSystems,
                         ::testing::Range(1u, 25u));

TEST(FuzzSystemsExtended, ThreadedTierWideSeedShard)
{
    const char *flag = std::getenv("SWAPRAM_FUZZ_EXTENDED");
    if (!flag || flag[0] == '\0' || flag[0] == '0')
        GTEST_SKIP()
            << "set SWAPRAM_FUZZ_EXTENDED=1 for the wide tier sweep";
    for (std::uint32_t seed = 400; seed < 440; ++seed)
        fuzzSystemsSeed(seed);
}

} // namespace
