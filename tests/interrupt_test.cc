/**
 * @file
 * Timer-interrupt tests: vectoring semantics, RETI, tick accounting,
 * and the SwapRAM interaction the paper's blacklist exists for (§3.1:
 * "functions with strict timing requirements") — a blacklisted ISR
 * always executes from FRAM with deterministic latency while the
 * foreground still benefits from caching.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "support/platform.hh"
#include "swapram/builder.hh"
#include "testutil.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

/** Foreground loop + tick ISR; finishes after the loop completes. */
const char *kIsrProgram = R"(
        .text
__start:
        MOV #0xFF80, SP
        ; install the ISR vector
        MOV #tick_isr, &0xFFF0
        EINT
        MOV #2000, R10
fg_loop:
        MOV #13, R12
        ADD #29, R12
        XOR R12, &fg_acc
        DEC R10
        JNZ fg_loop
        DINT
        MOV &tick_count, R12
        MOV R12, &bench_result
        MOV.B #1, &__DONE
__spin: JMP __spin

        .func tick_isr
        ADD #1, &tick_count
        RETI
        .endfunc

        .data
        .align 2
tick_count: .word 0
fg_acc:     .word 0
bench_result: .word 0
)";

test::MiniRun
runWithTimer(std::uint64_t period)
{
    sim::MachineConfig cfg;
    cfg.timer_period_cycles = period;
    masm::LayoutSpec layout; // unified
    test::MiniRun run;
    run.assembled = masm::assemble(masm::parse(kIsrProgram), layout);
    run.machine = std::make_unique<sim::Machine>(cfg);
    run.machine->load(run.assembled.image, 0xFF80);
    run.result = run.machine->run();
    return run;
}

TEST(Interrupts, TimerFiresAndIsCounted)
{
    auto r = runWithTimer(500);
    ASSERT_TRUE(r.result.done);
    std::uint16_t ticks =
        r.machine->peek16(r.assembled.symbol("tick_count"));
    EXPECT_GT(ticks, 10u);
    EXPECT_EQ(r.stats().interrupts, ticks);
    // Roughly one tick per 500 cycles while interrupts were enabled.
    std::uint64_t cycles = r.stats().totalCycles();
    EXPECT_NEAR(static_cast<double>(ticks),
                static_cast<double>(cycles) / 500.0,
                static_cast<double>(cycles) / 500.0 * 0.2 + 4);
}

TEST(Interrupts, DisabledTimerNeverFires)
{
    auto r = runWithTimer(0);
    ASSERT_TRUE(r.result.done);
    EXPECT_EQ(r.machine->peek16(r.assembled.symbol("tick_count")), 0);
    EXPECT_EQ(r.stats().interrupts, 0u);
}

TEST(Interrupts, GieGatesDelivery)
{
    // Same program but never enables interrupts: DINT path.
    std::string src = kIsrProgram;
    src.replace(src.find("        EINT"), 12, "        NOP ");
    sim::MachineConfig cfg;
    cfg.timer_period_cycles = 100;
    masm::LayoutSpec layout;
    auto assembled = masm::assemble(masm::parse(src), layout);
    sim::Machine machine(cfg);
    machine.load(assembled.image, 0xFF80);
    auto result = machine.run();
    ASSERT_TRUE(result.done);
    EXPECT_EQ(machine.peek16(assembled.symbol("tick_count")), 0);
}

TEST(Interrupts, RetiRestoresFlags)
{
    // The ISR clobbers flags; RETI must restore them so a conditional
    // straddling an interrupt still behaves.
    auto r = runWithTimer(97); // odd period: lands between CMP/JNE pairs
    ASSERT_TRUE(r.result.done);
    // The foreground loop ran to completion exactly 2000 times:
    // fg_acc = XOR of 2000 copies of 42 = 0 (even count).
    EXPECT_EQ(r.machine->peek16(r.assembled.symbol("fg_acc")), 0);
}

/** SwapRAM + blacklisted ISR: the paper's strict-timing use case. */
const char *kSwapIsrWorkload = R"(
        .text
        .func main
        PUSH R10
        MOV #tick_isr, &0xFFF0
        EINT
        PUSH R9
        CLR R9
        MOV #40, R10
mi_loop:
        MOV R9, R12
        CALL #work
        MOV R12, R9
        DEC R10
        JNZ mi_loop
        DINT
        MOV R9, R12
        XOR &tick_count, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc
        .func work
        PUSH R10
        MOV #50, R10
wk_loop:
        ADD #7, R12
        XOR #0x0180, R12
        DEC R10
        JNZ wk_loop
        POP R10
        RET
        .endfunc
        .func tick_isr
        ADD #1, &tick_count
        RETI
        .endfunc
        .data
        .align 2
tick_count: .word 0
bench_result: .word 0
)";

TEST(Interrupts, SwapRamWithBlacklistedIsr)
{
    workloads::Workload w;
    w.name = "isr";
    w.display = "ISR";
    w.source = kSwapIsrWorkload;

    harness::RunSpec spec;
    spec.workload = &w;
    spec.system = harness::System::SwapRam;
    spec.include_lib = false;
    spec.swap.blacklist = {"tick_isr"};
    spec.max_cycles = 50'000'000;

    // Run once without the timer to learn the deterministic part.
    auto no_timer = harness::runOne(spec);
    ASSERT_TRUE(no_timer.done);

    // runOne has no timer knob; drive the machine directly.
    auto plan = harness::makePlacement(harness::Placement::Unified);
    std::string source =
        harness::startupSource(plan.stack_top) + w.source;
    cache::Options opt;
    opt.blacklist = {"tick_isr"};
    auto info = cache::build(masm::parse(source), plan.layout, opt);
    sim::MachineConfig cfg;
    cfg.timer_period_cycles = 300;
    sim::Machine machine(cfg);
    machine.load(info.assembled.image, plan.stack_top);
    machine.addOwnerRange(info.handler_addr, info.handler_end,
                          sim::CodeOwner::Handler);
    auto result = machine.run();
    ASSERT_TRUE(result.done);

    std::uint16_t ticks =
        machine.peek16(info.assembled.symbol("tick_count"));
    EXPECT_GT(ticks, 5u);
    // The foreground accumulator must equal the no-timer run's
    // (bench_result XORs in tick_count, so compare the parts).
    std::uint16_t combined =
        machine.peek16(info.assembled.symbol("bench_result"));
    EXPECT_EQ(static_cast<std::uint16_t>(combined ^ ticks),
              no_timer.checksum);
    // The ISR is blacklisted: it never appears in the SwapRAM function
    // table, so every ISR instruction executed from FRAM while the
    // foreground `work` ran from SRAM.
    EXPECT_GT(machine.stats().instr_by_owner[int(
                  sim::CodeOwner::AppSram)],
              machine.stats().instructions / 2);
}

} // namespace
