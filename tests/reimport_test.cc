/**
 * @file
 * Tests for binary re-import (the paper's §4 library-instrumentation
 * flow): disassemble assembled functions back into instrumentable
 * assembly, re-link them against the original data sections, and run
 * the result under the baseline and SwapRAM.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "masm/parser.hh"
#include "masm/reimport.hh"
#include "support/logging.hh"
#include "swapram/builder.hh"
#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using masm::Directive;
using masm::Statement;

/** Everything outside .text (the data/const/bss sections). */
masm::Program
nonTextStatements(const masm::Program &program)
{
    masm::Program out;
    bool in_text = true; // default section
    for (const Statement &s : program.stmts) {
        if (s.kind == Statement::Kind::Directive) {
            switch (s.directive) {
              case Directive::Text:
                in_text = true;
                continue;
              case Directive::Const:
              case Directive::Data:
              case Directive::Bss:
                in_text = false;
                break;
              default:
                break;
            }
        }
        if (!in_text)
            out.stmts.push_back(s);
    }
    return out;
}

/** Round-trip a workload through assembly + disassembly. */
masm::Program
roundTrip(const workloads::Workload &w, bool with_lib = true)
{
    std::string source = harness::startupSource(0xFF80) + w.source;
    if (with_lib)
        source += workloads::libSource();
    masm::Program original = masm::parse(source);
    masm::AssembleResult assembled =
        masm::assemble(original, masm::LayoutSpec{});

    masm::Program rebuilt = masm::reimportAllFunctions(assembled);
    rebuilt.append(nonTextStatements(original));
    return rebuilt;
}

void
runRebuilt(const masm::Program &rebuilt, std::uint16_t expected,
           bool swapram_too)
{
    masm::AssembleResult assembled =
        masm::assemble(rebuilt, masm::LayoutSpec{});
    sim::Machine machine;
    machine.load(assembled.image, 0xFF80);
    auto result = machine.run();
    ASSERT_TRUE(result.done);
    EXPECT_EQ(machine.peek16(assembled.symbol("bench_result")),
              expected);

    if (swapram_too) {
        auto info = cache::build(rebuilt, masm::LayoutSpec{}, {});
        sim::Machine m2;
        m2.load(info.assembled.image, 0xFF80);
        auto r2 = m2.run();
        ASSERT_TRUE(r2.done);
        EXPECT_EQ(m2.peek16(info.assembled.symbol("bench_result")),
                  expected);
    }
}

TEST(Reimport, CrcRoundTripsThroughDisassembly)
{
    auto w = workloads::makeCrc();
    runRebuilt(roundTrip(w), w.expected, true);
}

TEST(Reimport, RsaRoundTripsThroughDisassembly)
{
    auto w = workloads::makeRsa();
    runRebuilt(roundTrip(w), w.expected, true);
}

TEST(Reimport, BitcountRoundTripsThroughDisassembly)
{
    auto w = workloads::makeBitcount();
    runRebuilt(roundTrip(w), w.expected, true);
}

TEST(Reimport, FftRoundTripsThroughDisassembly)
{
    auto w = workloads::makeFft();
    runRebuilt(roundTrip(w), w.expected, true);
}

TEST(Reimport, ReimportedFunctionHasLabelsForBranchTargets)
{
    auto w = workloads::makeCrc();
    std::string source = harness::startupSource(0xFF80) + w.source;
    auto assembled =
        masm::assemble(masm::parse(source), masm::LayoutSpec{});
    std::unordered_map<std::uint16_t, std::string> names;
    auto one = masm::reimportFunction(
        assembled.image, assembled.function("crc_block"), names);
    int labels = 0, jumps = 0;
    for (const Statement &s : one.stmts) {
        if (s.kind == Statement::Kind::Label)
            ++labels;
        if (s.kind == Statement::Kind::Instr &&
            isa::opFormat(s.instr.op) == isa::OpFormat::Jump) {
            ++jumps;
            EXPECT_TRUE(s.instr.jump_target.isSymbol());
        }
    }
    EXPECT_GT(labels, 0);
    EXPECT_GT(jumps, 0);
}

TEST(Reimport, RejectsAddressesOutsideImage)
{
    masm::Image image;
    masm::FunctionInfo info;
    info.name = "ghost";
    info.addr = 0x9000;
    info.size = 4;
    std::unordered_map<std::uint16_t, std::string> names;
    EXPECT_THROW(masm::reimportFunction(image, info, names),
                 support::FatalError);
}

} // namespace
