/**
 * @file
 * Differential tests: the cycle-level machine (encode -> load ->
 * fetch/decode/execute) against the independent AST-level interpreter.
 * Any divergence in final registers, memory, or console output points
 * at an encoder, decoder, or CPU-semantics bug.
 */

#include <gtest/gtest.h>

#include "ast_interpreter.hh"
#include "fuzz_programs.hh"
#include "harness/runner.hh"
#include "masm/parser.hh"
#include "support/strings.hh"
#include "support/platform.hh"
#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

void
compareRuns(const std::string &source, const char *what)
{
    masm::LayoutSpec layout; // unified: everything in FRAM
    auto assembled = masm::assemble(masm::parse(source), layout);

    sim::Machine machine;
    machine.load(assembled.image, 0xFF80);
    auto run = machine.run();
    ASSERT_TRUE(run.done) << what;

    auto interp = test::interpret(assembled, 0xFF80);
    ASSERT_TRUE(interp.done) << what;

    // Registers R1..R15 (PC is meaningless after halt).
    for (int r = 1; r < 16; ++r) {
        EXPECT_EQ(machine.cpu().reg(isa::regFromIndex(
                      static_cast<std::uint8_t>(r))),
                  interp.regs[r])
            << what << " R" << r;
    }
    EXPECT_EQ(machine.mmio().console(), interp.console) << what;

    // Whole memory except the MMIO window (the machine routes MMIO
    // writes to devices, the interpreter treats unknown MMIO as RAM).
    int mismatches = 0;
    for (std::uint32_t a = 0; a < 0x10000 && mismatches < 8; ++a) {
        if (a >= platform::kMmioBase && a < platform::kMmioEnd)
            continue;
        auto m = machine.peek8(static_cast<std::uint16_t>(a));
        auto i = interp.memory[a];
        if (m != i) {
            ++mismatches;
            ADD_FAILURE() << what << ": memory differs at "
                          << support::hex16(
                                 static_cast<std::uint16_t>(a))
                          << " machine=" << int(m)
                          << " interp=" << int(i);
        }
    }
}

class WorkloadDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadDifferential, MachineMatchesAstInterpreter)
{
    const auto *w = workloads::find(GetParam());
    ASSERT_NE(w, nullptr);
    std::string source = harness::startupSource(0xFF80) + w->source +
                         workloads::libSource();
    compareRuns(source, w->name.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDifferential,
    ::testing::Values("stringsearch", "dijkstra", "crc", "rc4", "fft",
                      "aes", "lzfx", "bitcount", "rsa"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Differential, ArithKernel)
{
    auto w = workloads::makeArith();
    compareRuns(harness::startupSource(0xFF80) + w.source,
                "arith");
}

TEST(Differential, FlagTortureProgram)
{
    // Dense flag interactions: carries, borrows, BCD, rotates, byte
    // ops, signed comparisons.
    const char *body = R"(
        .text
        .func main
        PUSH R10
        MOV #0x7FFF, R5
        ADD #1, R5              ; overflow
        SUBC R5, R5
        MOV #0x99, R6
        SETC
        DADD.B #0x01, R6        ; BCD with carry in
        MOV #0x8000, R7
        RRA R7
        RRC R7
        MOV #0x00FF, R8
        SXT R8
        ADD.B #1, R8
        SWPB R8
        MOV #10, R10
mt_loop:
        RLA R8
        ADC R8
        DADD R10, R9
        DEC R10
        JNZ mt_loop
        MOV R9, &bench_result
        POP R10
        RET
        .endfunc
        .data
        .align 2
bench_result: .word 0
)";
    compareRuns(harness::startupSource(0xFF80) + body, "flag-torture");
}

class RandomDifferential : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RandomDifferential, MachineMatchesAstInterpreter)
{
    auto w = test::randomProgram(GetParam());
    compareRuns(harness::startupSource(0xFF80) + w.source,
                w.name.c_str());
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, RandomDifferential,
                         ::testing::Range(100u, 140u));

} // namespace
