/**
 * @file
 * Hardware FRAM read-cache model tests: geometry, LRU, and the stall /
 * contention accounting the Figure-1 experiment depends on.
 */

#include <gtest/gtest.h>

#include "sim/hw_cache.hh"
#include "testutil.hh"

namespace {

using namespace swapram;
using sim::HwCache;

TEST(HwCache, LineGranularity)
{
    HwCache cache;
    EXPECT_FALSE(cache.access(0x8000));
    // Same 8-byte line: hits.
    EXPECT_TRUE(cache.access(0x8002));
    EXPECT_TRUE(cache.access(0x8006));
    // Next line: miss.
    EXPECT_FALSE(cache.access(0x8008));
}

TEST(HwCache, TwoWayTwoSets)
{
    HwCache cache;
    // Lines 0x8000 and 0x8010 map to set 0; 0x8008 maps to set 1.
    EXPECT_FALSE(cache.access(0x8000));
    EXPECT_FALSE(cache.access(0x8010));
    EXPECT_TRUE(cache.access(0x8000)); // both fit (2 ways)
    EXPECT_TRUE(cache.access(0x8010));
    // Third distinct line in set 0 evicts the LRU (0x8000).
    EXPECT_FALSE(cache.access(0x8020));
    EXPECT_FALSE(cache.access(0x8000));
    // Set 1 unaffected.
    EXPECT_FALSE(cache.access(0x8008));
    EXPECT_TRUE(cache.access(0x8008));
}

TEST(HwCache, ProbeDoesNotFill)
{
    HwCache cache;
    EXPECT_FALSE(cache.probe(0x9000));
    EXPECT_FALSE(cache.access(0x9000));
    EXPECT_TRUE(cache.probe(0x9000));
}

TEST(HwCache, ResetInvalidates)
{
    HwCache cache;
    cache.access(0x8000);
    cache.reset();
    EXPECT_FALSE(cache.probe(0x8000));
}

TEST(Stalls, SequentialCodeMostlyHits)
{
    // Straight-line code in FRAM at 24 MHz: one miss per 8-byte line.
    sim::MachineConfig cfg;
    cfg.clock_hz = 24'000'000;
    auto r = test::runBody("        NOP\n        NOP\n        NOP\n"
                           "        NOP\n        NOP\n        NOP\n",
                           cfg);
    const auto &st = r.stats();
    EXPECT_GT(st.fram_cache_hits, st.fram_cache_misses);
    EXPECT_EQ(st.stall_cycles % 1, 0u); // sanity
    EXPECT_GT(st.stall_cycles, 0u);
}

TEST(Stalls, ZeroWaitStatesAt8MHz)
{
    sim::MachineConfig cfg;
    cfg.clock_hz = 8'000'000;
    // Straight-line code touches one line at a time: no contention, no
    // wait states at 8 MHz.
    auto r = test::runBody("        NOP\n        NOP\n        NOP\n", cfg);
    EXPECT_EQ(r.stats().stall_cycles, 0u);
}

TEST(Stalls, ContentionAt8MHzForDisjointAccesses)
{
    // MOV &a, &b with a, b, and the code all in distinct FRAM lines:
    // a single instruction issuing multiple missing FRAM accesses pays
    // the contention stall even at 8 MHz.
    sim::MachineConfig cfg;
    cfg.clock_hz = 8'000'000;
    masm::LayoutSpec layout;
    layout.data_base = 0x9000; // FRAM data (unified memory model)
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV &a, &b\n"
                             "        MOV.B #0, &__DONE\n"
                             "        .data\n"
                             "a:      .word 1\n"
                             "        .align 8\n"
                             "        .space 8\n"
                             "b:      .word 0\n",
                             cfg, layout);
    EXPECT_TRUE(r.result.done);
    EXPECT_GT(r.stats().stall_cycles, 0u);
    EXPECT_EQ(r.machine->peek16(r.assembled.symbol("b")), 1);
}

TEST(Stalls, SramNeverStalls)
{
    // Execute code out of SRAM: zero stall cycles even at 24 MHz, apart
    // from the initial FRAM fetch of the copy loop. Here we place the
    // whole text in SRAM directly.
    sim::MachineConfig cfg;
    cfg.clock_hz = 24'000'000;
    masm::LayoutSpec layout;
    layout.text_base = 0x2000;
    layout.data_base = 0x2800;
    auto r = test::runSource("        .text\n"
                             "__start:\n"
                             "        MOV #0x3000, SP\n"
                             "        MOV #100, R5\n"
                             "loop:   DEC R5\n"
                             "        JNE loop\n"
                             "        MOV.B #0, &__DONE\n",
                             cfg, layout);
    EXPECT_TRUE(r.result.done);
    EXPECT_EQ(r.stats().stall_cycles, 0u);
    EXPECT_EQ(r.stats().fram.total(), 0u);
}

TEST(Stalls, WaitStatesScaleMisses)
{
    // Same program at 8 vs 24 MHz: identical base cycles, stalls only
    // at 24 MHz (for line-crossing fetches).
    std::string body = "        MOV #50, R5\n"
                       "big:    DEC R5\n"
                       "        NOP\n        NOP\n        NOP\n"
                       "        NOP\n        NOP\n        NOP\n"
                       "        JNE big\n";
    sim::MachineConfig cfg8;
    cfg8.clock_hz = 8'000'000;
    sim::MachineConfig cfg24;
    cfg24.clock_hz = 24'000'000;
    auto r8 = test::runBody(body, cfg8);
    auto r24 = test::runBody(body, cfg24);
    EXPECT_EQ(r8.stats().base_cycles, r24.stats().base_cycles);
    EXPECT_EQ(r8.stats().instructions, r24.stats().instructions);
    EXPECT_GT(r24.stats().stall_cycles, r8.stats().stall_cycles);
}

TEST(Stalls, DisabledHwCacheStallsEveryAccess)
{
    sim::MachineConfig with_cache;
    with_cache.clock_hz = 24'000'000;
    sim::MachineConfig no_cache = with_cache;
    no_cache.hw_cache_enabled = false;
    std::string body = "        MOV #20, R5\n"
                       "l:      DEC R5\n"
                       "        JNE l\n";
    auto r1 = test::runBody(body, with_cache);
    auto r2 = test::runBody(body, no_cache);
    EXPECT_GT(r2.stats().stall_cycles, r1.stats().stall_cycles);
    EXPECT_EQ(r2.stats().fram_cache_hits, 0u);
}

} // namespace
