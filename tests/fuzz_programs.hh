/**
 * @file
 * Shared random-program generator for the fuzz and differential
 * suites: random ALU bodies over global cells wired into a random
 * acyclic call graph with loops and occasional absolute branches.
 */

#ifndef SWAPRAM_TESTS_FUZZ_PROGRAMS_HH
#define SWAPRAM_TESTS_FUZZ_PROGRAMS_HH

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::test {

/** Emit a random flag-safe ALU instruction mutating R12/R13 or state.
 *  @p label_seq provides unique label names for conditional skips. */
inline void
emitAluOp(std::ostringstream &os, support::Rng &rng, int func_id,
          int &label_seq)
{
    switch (rng.below(12)) {
      case 0:
        os << "        ADD #" << rng.below(0x7FFF) << ", R12\n";
        break;
      case 1:
        os << "        XOR #" << rng.below(0xFFFF) << ", R12\n";
        break;
      case 2:
        os << "        ADD R13, R12\n";
        break;
      case 3:
        os << "        SWPB R12\n";
        break;
      case 4:
        os << "        RLA R12\n        ADC R12\n"; // rotate left
        break;
      case 5:
        os << "        ADD &fz_g" << func_id << ", R12\n";
        break;
      case 6:
        os << "        XOR R12, &fz_g" << func_id << "\n";
        break;
      case 7:
        os << "        MOV R12, R13\n        INV R13\n";
        break;
      case 8:
        os << "        SUB #" << rng.below(999) << ", R13\n";
        break;
      case 9: {
        // Conditional skip over one mutation (producer adjacent to
        // its consumer, as the block cache requires).
        std::string skip = "fz_sk" + std::to_string(label_seq++);
        const char *cond = rng.below(2) ? "JGE" : "JNC";
        os << "        CMP #" << rng.below(0x7FFF) << ", R12\n"
           << "        " << cond << " " << skip << "\n"
           << "        ADD #" << rng.below(511) << ", R12\n"
           << skip << ":\n";
        break;
      }
      case 10:
        os << "        ADD.B #" << rng.below(255) << ", R12\n";
        break;
      default:
        // Indexed access into the shared scratch array.
        os << "        MOV R12, R14\n"
              "        AND #6, R14\n"
           << (rng.below(2) ? "        XOR R13, fz_arr(R14)\n"
                            : "        ADD fz_arr(R14), R12\n");
        break;
    }
}

/**
 * Build one random program. Functions 0..n-1 may call only
 * higher-numbered functions (acyclic); each has a small loop and
 * mutates its own global cell, so the final .data state captures the
 * whole execution history.
 */
inline workloads::Workload
randomProgram(std::uint32_t seed)
{
    support::Rng rng(seed);
    int label_seq = 0;
    const int nfuncs = 3 + static_cast<int>(rng.below(6)); // 3..8

    std::ostringstream os;
    os << "        .text\n";
    for (int f = nfuncs - 1; f >= 0; --f) {
        os << "        .func fz_f" << f << "\n";
        os << "        PUSH R10\n";
        int loop_iters = 1 + rng.below(6);
        os << "        MOV #" << loop_iters << ", R10\n";
        os << "fz_l" << f << ":\n";
        int body = 2 + rng.below(6);
        for (int i = 0; i < body; ++i)
            emitAluOp(os, rng, f, label_seq);
        // Random calls to later functions (guaranteed acyclic).
        for (int c = 0; c < 2; ++c) {
            if (f + 1 < nfuncs && rng.below(10) < 6) {
                int callee = f + 1 +
                             static_cast<int>(
                                 rng.below(nfuncs - f - 1));
                os << "        CALL #fz_f" << callee << "\n";
            }
        }
        // Occasionally an intra-function absolute branch (exercises
        // SwapRAM relocation).
        if (rng.below(10) < 4) {
            os << "        BIT #1, R12\n"
               << "        JZ fz_s" << f << "\n"
               << "        BR #fz_s" << f << "\n"
               << "fz_s" << f << ":\n";
        }
        os << "        XOR R12, &fz_g" << f << "\n";
        os << "        DEC R10\n";
        os << "        JNZ fz_l" << f << "\n";
        os << "        POP R10\n";
        os << "        RET\n";
        os << "        .endfunc\n";
    }

    os << "        .func main\n"
          "        MOV #" << (1 + rng.below(4)) << ", R14\n"
          "        MOV R14, &fz_reps\n"
          "fz_main_loop:\n"
          "        MOV #" << rng.word() << ", R12\n"
          "        MOV #" << rng.word() << ", R13\n"
          "        CALL #fz_f0\n"
          "        ADD R12, &fz_sum\n"
          "        SUB #1, &fz_reps\n"
          "        JNZ fz_main_loop\n"
          "        MOV &fz_sum, R12\n"
          "        MOV R12, &bench_result\n"
          "        RET\n"
          "        .endfunc\n"
          "        .data\n        .align 2\n";
    for (int f = 0; f < nfuncs; ++f)
        os << "fz_g" << f << ": .word " << rng.word() << "\n";
    os << "fz_arr: .word " << rng.word() << ", " << rng.word() << ", "
       << rng.word() << ", " << rng.word() << "\n";
    os << "fz_sum:  .word 0\n"
          "fz_reps: .word 0\n"
          "bench_result: .word 0\n";

    workloads::Workload w;
    w.name = "fuzz" + std::to_string(seed);
    w.display = w.name;
    w.source = os.str();
    w.expected = 0; // baseline acts as the oracle
    return w;
}


} // namespace swapram::test

#endif // SWAPRAM_TESTS_FUZZ_PROGRAMS_HH
