/**
 * @file
 * Shared random-program generator for the fuzz and differential
 * suites: random ALU bodies over global cells wired into a random
 * acyclic call graph with loops and occasional absolute branches.
 *
 * The generator is versioned so recorded seeds stay meaningful:
 * version 1 reproduces the historical programs byte-for-byte (it pins
 * the legacy biased Rng::below and the original op palette); version 2
 * widens the palette with byte-sized (.B) ALU ops and can emit
 * interrupt-driven configurations whose tick count is deterministic
 * across execution systems and power failures.
 */

#ifndef SWAPRAM_TESTS_FUZZ_PROGRAMS_HH
#define SWAPRAM_TESTS_FUZZ_PROGRAMS_HH

#include <sstream>

#include "support/rng.hh"
#include "workloads/workload.hh"

namespace swapram::test {

/** Generator configuration (see file header for the version story). */
struct FuzzOptions {
    int version = 1;            ///< 1 = historical, 2 = extended
    bool allow_interrupts = false; ///< v2 only: maybe emit a tick ISR
};

/** Emit ALU case @p pick, mutating R12/R13 or state. Cases 0-11 are
 *  the version-1 palette (their Rng consumption is pinned); 12-15 are
 *  the version-2 byte-op extensions. @p label_seq provides unique
 *  label names for conditional skips. */
inline void
emitAluCase(std::ostringstream &os, int pick, support::Rng &rng,
            int func_id, int &label_seq)
{
    switch (pick) {
      case 0:
        os << "        ADD #" << rng.below(0x7FFF) << ", R12\n";
        break;
      case 1:
        os << "        XOR #" << rng.below(0xFFFF) << ", R12\n";
        break;
      case 2:
        os << "        ADD R13, R12\n";
        break;
      case 3:
        os << "        SWPB R12\n";
        break;
      case 4:
        os << "        RLA R12\n        ADC R12\n"; // rotate left
        break;
      case 5:
        os << "        ADD &fz_g" << func_id << ", R12\n";
        break;
      case 6:
        os << "        XOR R12, &fz_g" << func_id << "\n";
        break;
      case 7:
        os << "        MOV R12, R13\n        INV R13\n";
        break;
      case 8:
        os << "        SUB #" << rng.below(999) << ", R13\n";
        break;
      case 9: {
        // Conditional skip over one mutation (producer adjacent to
        // its consumer, as the block cache requires).
        std::string skip = "fz_sk" + std::to_string(label_seq++);
        const char *cond = rng.below(2) ? "JGE" : "JNC";
        os << "        CMP #" << rng.below(0x7FFF) << ", R12\n"
           << "        " << cond << " " << skip << "\n"
           << "        ADD #" << rng.below(511) << ", R12\n"
           << skip << ":\n";
        break;
      }
      case 10:
        os << "        ADD.B #" << rng.below(255) << ", R12\n";
        break;
      case 11:
        // Indexed access into the shared scratch array.
        os << "        MOV R12, R14\n"
              "        AND #6, R14\n"
           << (rng.below(2) ? "        XOR R13, fz_arr(R14)\n"
                            : "        ADD fz_arr(R14), R12\n");
        break;
      // ---- version-2 byte-op extensions ----
      case 12:
        os << "        XOR.B #" << rng.below(255) << ", R12\n"
              "        SXT R12\n";
        break;
      case 13:
        // Indexed byte access into the byte scratch array.
        os << "        MOV R13, R14\n"
              "        AND #7, R14\n"
           << (rng.below(2) ? "        XOR.B R12, fz_barr(R14)\n"
                            : "        ADD.B fz_barr(R14), R12\n");
        break;
      case 14:
        os << "        BIS.B #" << (1 + rng.below(254)) << ", R12\n"
              "        BIC.B #" << (1 + rng.below(254)) << ", R13\n";
        break;
      default:
        os << "        MOV.B R12, R14\n"
              "        RRA.B R14\n"
              "        ADD R14, R12\n";
        break;
    }
}

/** Version-1 entry point (kept for callers with recorded seeds). */
inline void
emitAluOp(std::ostringstream &os, support::Rng &rng, int func_id,
          int &label_seq)
{
    emitAluCase(os, static_cast<int>(rng.below(12)), rng, func_id,
                label_seq);
}

/**
 * Build one random program. Functions 0..n-1 may call only
 * higher-numbered functions (acyclic); each has a small loop and
 * mutates its own global cell, so the final .data state captures the
 * whole execution history.
 *
 * Version-2 interrupt configurations are deterministic by
 * construction: the raw-label ISR (untouched by either caching
 * transform) counts ticks, clears the saved GIE bit at the K-th tick,
 * and main spin-waits for exactly K ticks before folding the ISR
 * state into the checksum — so every system and every reboot observes
 * the same tick count regardless of interleaving.
 */
inline workloads::Workload
randomProgram(std::uint32_t seed, const FuzzOptions &opts)
{
    const bool v2 = opts.version >= 2;
    // Version 1 pins the legacy biased below() so historical fuzz
    // seeds keep producing byte-identical programs.
    support::Rng rng(v2 ? seed ^ 0xF22Du : seed,
                     v2 ? support::Rng::kUniformBelow
                        : support::Rng::kLegacyBelow);
    int label_seq = 0;
    const int nfuncs = 3 + static_cast<int>(rng.below(6)); // 3..8
    const int alu_cases = v2 ? 16 : 12;

    bool interrupts = v2 && opts.allow_interrupts && rng.below(10) < 4;
    const int isr_ticks = interrupts ? 2 + static_cast<int>(rng.below(6))
                                     : 0;
    const std::uint64_t isr_period =
        interrupts ? 400 + rng.below(1200) : 0;
    const unsigned isr_mix = interrupts ? rng.word() : 0;

    std::ostringstream os;
    os << "        .text\n";
    if (interrupts) {
        // Raw labels, not .func: neither caching system transforms or
        // relocates the ISR, so it always runs from its FRAM home
        // with deterministic latency (the paper's §3.1 rationale).
        os << "fz_isr:\n"
              "        ADD #1, &fz_ticks\n"
              "        XOR #" << isr_mix << ", &fz_isr_acc\n"
              "        CMP #" << isr_ticks << ", &fz_ticks\n"
              "        JNE fz_isr_ret\n"
              "        BIC #8, 0(SP)\n" // clear saved GIE: last tick
              "fz_isr_ret:\n"
              "        RETI\n";
    }
    for (int f = nfuncs - 1; f >= 0; --f) {
        os << "        .func fz_f" << f << "\n";
        os << "        PUSH R10\n";
        int loop_iters = 1 + rng.below(6);
        os << "        MOV #" << loop_iters << ", R10\n";
        os << "fz_l" << f << ":\n";
        int body = 2 + rng.below(6);
        for (int i = 0; i < body; ++i)
            emitAluCase(os, static_cast<int>(rng.below(alu_cases)),
                        rng, f, label_seq);
        // Random calls to later functions (guaranteed acyclic).
        for (int c = 0; c < 2; ++c) {
            if (f + 1 < nfuncs && rng.below(10) < 6) {
                int callee = f + 1 +
                             static_cast<int>(
                                 rng.below(nfuncs - f - 1));
                os << "        CALL #fz_f" << callee << "\n";
            }
        }
        // Occasionally an intra-function absolute branch (exercises
        // SwapRAM relocation).
        if (rng.below(10) < 4) {
            os << "        BIT #1, R12\n"
               << "        JZ fz_s" << f << "\n"
               << "        BR #fz_s" << f << "\n"
               << "fz_s" << f << ":\n";
        }
        os << "        XOR R12, &fz_g" << f << "\n";
        os << "        DEC R10\n";
        os << "        JNZ fz_l" << f << "\n";
        os << "        POP R10\n";
        os << "        RET\n";
        os << "        .endfunc\n";
    }

    os << "        .func main\n";
    if (interrupts) {
        os << "        MOV #fz_isr, &0xFFF0\n"
              "        EINT\n";
    }
    os << "        MOV #" << (1 + rng.below(4)) << ", R14\n"
          "        MOV R14, &fz_reps\n"
          "fz_main_loop:\n"
          "        MOV #" << rng.word() << ", R12\n"
          "        MOV #" << rng.word() << ", R13\n"
          "        CALL #fz_f0\n"
          "        ADD R12, &fz_sum\n"
          "        SUB #1, &fz_reps\n"
          "        JNZ fz_main_loop\n";
    if (interrupts) {
        // Wait for the self-limiting ISR to deliver all K ticks, then
        // fold its (now final) state into the result.
        os << "fz_wait:\n"
              "        CMP #" << isr_ticks << ", &fz_ticks\n"
              "        JNE fz_wait\n"
              "        DINT\n"
              "        ADD &fz_ticks, &fz_sum\n"
              "        XOR &fz_isr_acc, &fz_sum\n";
    }
    os << "        MOV &fz_sum, R12\n"
          "        MOV R12, &bench_result\n";
    if (v2) {
        // Byte the checksum out over the console UART so intermittent
        // runs also validate console replay.
        os << "        MOV.B R12, &0x0100\n"
              "        SWPB R12\n"
              "        MOV.B R12, &0x0100\n"
              "        SWPB R12\n";
    }
    os << "        RET\n"
          "        .endfunc\n"
          "        .data\n        .align 2\n";
    for (int f = 0; f < nfuncs; ++f)
        os << "fz_g" << f << ": .word " << rng.word() << "\n";
    os << "fz_arr: .word " << rng.word() << ", " << rng.word() << ", "
       << rng.word() << ", " << rng.word() << "\n";
    if (v2) {
        os << "fz_barr: .byte";
        for (int i = 0; i < 8; ++i)
            os << (i ? ", " : " ") << static_cast<int>(rng.byte());
        os << "\n        .align 2\n";
    }
    os << "fz_sum:  .word 0\n"
          "fz_reps: .word 0\n";
    if (interrupts) {
        os << "fz_ticks: .word 0\n"
              "fz_isr_acc: .word 0\n";
    }
    os << "bench_result: .word 0\n";

    workloads::Workload w;
    w.name = "fuzz" + std::to_string(seed);
    w.display = w.name;
    w.source = os.str();
    w.expected = 0; // baseline acts as the oracle
    w.timer_period_cycles = isr_period;
    return w;
}

/** Version-1 entry point (historical programs, recorded seeds). */
inline workloads::Workload
randomProgram(std::uint32_t seed)
{
    return randomProgram(seed, FuzzOptions{});
}

} // namespace swapram::test

#endif // SWAPRAM_TESTS_FUZZ_PROGRAMS_HH
