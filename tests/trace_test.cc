/**
 * @file
 * Tests for the observability subsystem (ISSUE 1): the trace engine
 * (emission, category filtering, ring bounds), the sinks (text/CSV
 * shape, Chrome trace_event well-formedness), the per-function
 * profiler (exact cycle attribution), the swap timeline, and the
 * RunReport JSON schema.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "trace/event.hh"
#include "trace/profile.hh"
#include "trace/sinks.hh"
#include "trace/swap_timeline.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
namespace json = support::json;

trace::Event
ev(std::uint64_t cycle, trace::EventKind kind, std::uint16_t addr = 0,
   std::uint16_t value = 0, std::uint32_t extra = 0)
{
    return {cycle, kind, 0, addr, value, extra};
}

TEST(TraceEngine, DeliversMatchingEventsToRingAndSinks)
{
    struct Capture : trace::Sink {
        std::vector<trace::Event> seen;
        void event(const trace::Event &e) override
        {
            seen.push_back(e);
        }
    } cap;

    trace::TraceEngine engine(trace::kCatAll, 16);
    engine.addSink(&cap, trace::kCatInstr);
    engine.emit(ev(1, trace::EventKind::InstrRetire, 0x8000));
    engine.emit(ev(2, trace::EventKind::Read, 0x2000));
    engine.emit(ev(3, trace::EventKind::FramStall, 0x8004));

    // The sink only subscribed to instructions...
    ASSERT_EQ(cap.seen.size(), 1u);
    EXPECT_EQ(cap.seen[0].cycle, 1u);
    // ...but the ring recorded everything.
    EXPECT_EQ(engine.ring().size(), 3u);
    EXPECT_EQ(engine.emitted(), 3u);
    EXPECT_EQ(engine.dropped(), 0u);
}

TEST(TraceEngine, MaskIsUnionOfRingAndSinks)
{
    struct Null : trace::Sink {
        void event(const trace::Event &) override {}
    } sink;

    trace::TraceEngine engine(trace::kCatInstr, 16);
    EXPECT_TRUE(engine.wants(trace::kCatInstr));
    EXPECT_FALSE(engine.wants(trace::kCatSwap));
    engine.addSink(&sink, trace::kCatSwap);
    EXPECT_TRUE(engine.wants(trace::kCatSwap));

    // Events nobody wants are not counted or stored.
    engine.emit(ev(1, trace::EventKind::Read, 0x2000));
    EXPECT_EQ(engine.emitted(), 0u);
    EXPECT_TRUE(engine.ring().empty());
}

TEST(TraceEngine, RingIsBoundedAndKeepsNewest)
{
    trace::TraceEngine engine(trace::kCatAll, 4);
    for (std::uint64_t c = 0; c < 10; ++c)
        engine.emit(ev(c, trace::EventKind::InstrRetire));
    auto ring = engine.ring();
    ASSERT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.front().cycle, 6u); // oldest surviving
    EXPECT_EQ(ring.back().cycle, 9u);
    EXPECT_EQ(engine.emitted(), 10u);
    EXPECT_EQ(engine.dropped(), 6u);
}

TEST(TraceEngine, ZeroCapacityDisablesRing)
{
    trace::TraceEngine engine(trace::kCatAll, 0);
    EXPECT_EQ(engine.mask(), trace::kCatNone);
    engine.emit(ev(1, trace::EventKind::InstrRetire));
    EXPECT_TRUE(engine.ring().empty());
    EXPECT_EQ(engine.emitted(), 0u);
}

TEST(TraceCategories, ParseAndNames)
{
    EXPECT_EQ(trace::parseCategories("all"), trace::kCatAll);
    EXPECT_EQ(trace::parseCategories("instr"),
              static_cast<std::uint32_t>(trace::kCatInstr));
    EXPECT_EQ(trace::parseCategories("instr,swap"),
              trace::kCatInstr | trace::kCatSwap);
    EXPECT_THROW(trace::parseCategories("bogus"),
                 support::FatalError);
    EXPECT_EQ(trace::categoryNames(trace::kCatInstr | trace::kCatSwap),
              "instr,swap");
    EXPECT_EQ(trace::categoryNames(trace::kCatNone), "");
}

TEST(TraceSinks, CsvHasHeaderAndOneLinePerEvent)
{
    std::ostringstream out;
    trace::CsvSink sink(out);
    trace::TraceEngine engine(trace::kCatNone, 16);
    engine.addSink(&sink, trace::kCatAll);
    engine.emit(ev(5, trace::EventKind::Read, 0x2000, 0x1234));
    engine.emit(ev(9, trace::EventKind::FramStall, 0x8000, 0, 3));
    engine.finish();

    std::istringstream lines(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, "cycle,category,kind,addr,value,extra,byte,symbol");
    int rows = 0;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, 2);
}

TEST(TraceSinks, StreamLimitStopsOutput)
{
    std::ostringstream out;
    trace::TextSink sink(out);
    sink.setLimit(2);
    trace::TraceEngine engine(trace::kCatNone, 16);
    engine.addSink(&sink, trace::kCatAll);
    for (std::uint64_t c = 0; c < 8; ++c)
        engine.emit(ev(c, trace::EventKind::InstrRetire, 0x8000));
    engine.finish();
    std::istringstream lines(out.str());
    std::string line;
    int rows = 0;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, 2);
}

TEST(TraceSinks, ChromeTraceIsWellFormedJson)
{
    std::ostringstream out;
    trace::ChromeTraceSink sink(out, 24'000'000);
    trace::TraceEngine engine(trace::kCatNone, 16);
    engine.addSink(&sink, trace::kCatAll);
    engine.emit(ev(0, trace::EventKind::OwnerChange, 0x8000, 0, 0xFF));
    engine.emit(ev(24, trace::EventKind::MissEnter, 0x80F2));
    engine.emit(ev(48, trace::EventKind::CopyIn, 0x2000, 0x8010, 64));
    engine.emit(ev(90, trace::EventKind::MissExit, 0, 1, 66));
    engine.emit(ev(120, trace::EventKind::InstrRetire, 0x2000, 2, 0));
    engine.finish();

    json::Value doc = json::parse(out.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc["displayTimeUnit"].asString(), "ms");
    const json::Array &events = doc["traceEvents"].asArray();
    ASSERT_GE(events.size(), 5u);
    int begins = 0, ends = 0;
    for (const json::Value &e : events) {
        ASSERT_TRUE(e.isObject());
        EXPECT_TRUE(e["name"].isString());
        EXPECT_TRUE(e["ph"].isString());
        EXPECT_TRUE(e["ts"].isNumber());
        const std::string &ph = e["ph"].asString();
        begins += ph == "B";
        ends += ph == "E";
    }
    // finish() must close every span it opened.
    EXPECT_EQ(begins, ends);
    // ts is microseconds: cycle 24 @ 24MHz = 1us.
    EXPECT_DOUBLE_EQ(events.at(1)["ts"].asDouble(), 1.0);
}

TEST(FunctionProfiler, AttributesToRangesOverlaysAndPseudoRows)
{
    trace::FunctionProfiler prof;
    prof.addFunction("f", 0x8000, 0x20);
    prof.addFunction("g", 0x8020, 0x10);
    prof.seal();

    trace::StepCosts costs;
    costs.base_cycles = 2;
    prof.record(0x8004, 0, costs); // f (static)
    prof.record(0x8024, 0, costs); // g (static)
    // g becomes cache-resident at 0x2000.
    prof.mapResident(0x2000, 0x10, 0x8020);
    prof.record(0x2008, 1, costs); // g (overlay)
    prof.unmapResident(0x2000);
    prof.record(0x2008, 1, costs); // now unattributable -> pseudo
    prof.record(0x9000, 2, costs); // handler pseudo-bucket

    EXPECT_EQ(prof.attributedCycles(), 10u);
    auto rows = prof.rows(sim::EnergyModel{}, 24'000'000);
    std::uint64_t g_cycles = 0, g_resident = 0;
    bool saw_sram_pseudo = false, saw_handler_pseudo = false;
    for (const auto &r : rows) {
        if (r.name == "g") {
            g_cycles = r.totalCycles();
            g_resident = r.sram_resident_instructions;
        }
        saw_sram_pseudo |= r.name == "[app-sram]";
        saw_handler_pseudo |= r.name == "[handler]";
    }
    EXPECT_EQ(g_cycles, 4u); // static + overlay both land on g
    EXPECT_EQ(g_resident, 1u);
    EXPECT_TRUE(saw_sram_pseudo);
    EXPECT_TRUE(saw_handler_pseudo);
}

/** Run a workload with profiling + timeline through the harness. */
harness::Metrics
observedRun(const char *workload, harness::System system)
{
    const workloads::Workload *wl = workloads::find(workload);
    EXPECT_NE(wl, nullptr);
    harness::RunSpec spec;
    spec.workload = wl;
    spec.system = system;
    spec.observe.profile = true;
    return harness::runOne(spec);
}

TEST(Profiler, BaselineCyclesSumExactlyToTotal)
{
    auto m = observedRun("crc", harness::System::Baseline);
    ASSERT_TRUE(m.done);
    ASSERT_FALSE(m.profile.empty());
    std::uint64_t sum = 0, instrs = 0;
    for (const auto &r : m.profile) {
        sum += r.totalCycles();
        instrs += r.instructions;
    }
    EXPECT_EQ(sum, m.stats.totalCycles());
    // Interrupt entries are recorded as cost, not as instructions.
    EXPECT_EQ(instrs, m.stats.instructions + m.stats.interrupts);
}

TEST(Profiler, SwapRamCyclesSumExactlyToTotal)
{
    auto m = observedRun("crc", harness::System::SwapRam);
    ASSERT_TRUE(m.done);
    std::uint64_t sum = 0;
    bool saw_runtime = false, saw_resident = false;
    for (const auto &r : m.profile) {
        sum += r.totalCycles();
        saw_runtime |= r.name == "__swp_miss";
        saw_resident |= r.sram_resident_instructions > 0;
    }
    EXPECT_EQ(sum, m.stats.totalCycles());
    EXPECT_TRUE(saw_runtime);
    EXPECT_TRUE(saw_resident);
}

TEST(SwapTimeline, ReconstructsMissesAndCopyIns)
{
    auto m = observedRun("crc", harness::System::SwapRam);
    ASSERT_TRUE(m.done);
    EXPECT_GT(m.swap_summary.misses, 0u);
    EXPECT_GT(m.swap_summary.copy_ins, 0u);
    EXPECT_GT(m.swap_summary.bytes_copied, 0u);
    EXPECT_GT(m.swap_summary.peak_resident_bytes, 0u);
    ASSERT_FALSE(m.swap_events.empty());

    // Copy-ins must name a real function and land in the cache.
    bool saw_copy = false;
    for (const auto &e : m.swap_events) {
        if (e.kind != trace::EventKind::CopyIn)
            continue;
        saw_copy = true;
        EXPECT_FALSE(e.func.empty());
        EXPECT_GT(e.bytes, 0u);
        EXPECT_GE(e.cache_addr, 0x2000);
    }
    EXPECT_TRUE(saw_copy);
    ASSERT_FALSE(m.occupancy.empty());
    EXPECT_LE(m.occupancy.back().resident_bytes,
              m.swap_summary.peak_resident_bytes);
}

TEST(Observe, DisabledRunCollectsNothing)
{
    const workloads::Workload *wl = workloads::find("crc");
    harness::RunSpec spec;
    spec.workload = wl;
    spec.system = harness::System::SwapRam;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.trace_emitted, 0u);
    EXPECT_TRUE(m.profile.empty());
    EXPECT_TRUE(m.swap_events.empty());
}

TEST(RunReport, JsonRoundTripsAndMatchesMetrics)
{
    const workloads::Workload *wl = workloads::find("crc");
    harness::RunSpec spec;
    spec.workload = wl;
    spec.system = harness::System::SwapRam;
    spec.observe.profile = true;
    auto m = harness::runOne(spec);
    auto report = harness::RunReport::make(spec, m);

    json::Value doc = json::parse(report.json().dump(2));
    EXPECT_EQ(doc["schema"].asString(), "swapram-run-report/v1");
    EXPECT_EQ(doc["workload"].asString(), "crc");
    EXPECT_EQ(doc["system"].asString(), "swapram");
    EXPECT_TRUE(doc["fits"].asBool());
    EXPECT_TRUE(doc["done"].asBool());
    EXPECT_EQ(doc["stats"]["total_cycles"].asInt(),
              static_cast<std::int64_t>(m.stats.totalCycles()));
    EXPECT_EQ(doc["stats"]["superblock_dispatches"].asInt(),
              static_cast<std::int64_t>(m.stats.superblock_dispatches));
    EXPECT_EQ(doc["stats"]["superblock_instructions"].asInt(),
              static_cast<std::int64_t>(m.stats.superblock_instructions));
    EXPECT_EQ(doc["stats"]["threaded_dispatches"].asInt(),
              static_cast<std::int64_t>(m.stats.threaded_dispatches));
    EXPECT_EQ(doc["stats"]["threaded_instructions"].asInt(),
              static_cast<std::int64_t>(m.stats.threaded_instructions));

    const json::Array &profile = doc["profile"].asArray();
    ASSERT_EQ(profile.size(), m.profile.size());
    std::int64_t sum = 0;
    for (const json::Value &row : profile)
        sum += row["total_cycles"].asInt();
    EXPECT_EQ(sum, doc["stats"]["total_cycles"].asInt());

    EXPECT_EQ(doc["swap"]["misses"].asInt(),
              static_cast<std::int64_t>(m.swap_summary.misses));
    ASSERT_FALSE(doc["swap"]["events"].asArray().empty());

    // Text rendering mentions the top function and the swap line.
    std::string text = report.text();
    EXPECT_NE(text.find("swap:"), std::string::npos);
    EXPECT_NE(text.find(m.profile.front().name), std::string::npos);
}

TEST(RunReport, TraceOutputIsStreamedThroughTheHarness)
{
    const workloads::Workload *wl = workloads::find("crc");
    std::ostringstream out;
    harness::RunSpec spec;
    spec.workload = wl;
    spec.system = harness::System::SwapRam;
    spec.observe.categories = trace::kCatSwap;
    spec.observe.format = harness::ObserveSpec::Format::Chrome;
    spec.observe.out = &out;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_GT(m.trace_emitted, 0u);

    json::Value doc = json::parse(out.str());
    const json::Array &events = doc["traceEvents"].asArray();
    ASSERT_FALSE(events.empty());
    bool saw_copy = false;
    for (const json::Value &e : events)
        saw_copy |= e["name"].asString() == "copy-in" ||
                    e["cat"].asString() == "swap";
    EXPECT_TRUE(saw_copy);
}

} // namespace
