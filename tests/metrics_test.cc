/**
 * @file
 * Metrics layer tests (ISSUE 6): histogram bucket boundaries and
 * percentile semantics against a brute-force reference, bucket-wise
 * merge associativity, registry behaviour, heatmap page accounting
 * summing exactly to the simulator's Stats access counts, engine
 * progress callbacks, and flamegraph folded-stack attribution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "harness/engine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "metrics/heatmap.hh"
#include "metrics/metrics.hh"
#include "metrics/run_metrics.hh"
#include "sim/memory.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using metrics::AddressHeatmap;
using metrics::Histogram;

const workloads::Workload &
workload(const std::string &name)
{
    const workloads::Workload *w = workloads::find(name);
    if (!w)
        support::fatal("test workload missing: ", name);
    return *w;
}

// ---------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketFor(0), 0);
    EXPECT_EQ(Histogram::bucketFor(1), 1);
    EXPECT_EQ(Histogram::bucketFor(2), 2);
    EXPECT_EQ(Histogram::bucketFor(3), 2);
    EXPECT_EQ(Histogram::bucketFor(4), 3);
    EXPECT_EQ(Histogram::bucketFor(7), 3);
    EXPECT_EQ(Histogram::bucketFor(8), 4);
    EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64);

    // Every power of two starts a fresh bucket; the value one below
    // closes the previous one.
    for (int k = 0; k < 63; ++k) {
        std::uint64_t p = 1ull << k;
        EXPECT_EQ(Histogram::bucketFor(p), k + 1) << p;
        EXPECT_EQ(Histogram::bucketLow(k + 1), p) << p;
        if (k > 0) {
            EXPECT_EQ(Histogram::bucketHigh(k), p - 1) << p;
        }
    }
    // Bucket bounds tile the domain: high(i) + 1 == low(i+1).
    for (int i = 1; i < Histogram::kBuckets - 1; ++i)
        EXPECT_EQ(Histogram::bucketHigh(i) + 1, Histogram::bucketLow(i + 1));
}

TEST(Histogram, ExactAggregates)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    std::vector<std::uint64_t> values{0, 1, 1, 3, 9, 100, 7, 64};
    std::uint64_t sum = 0;
    for (std::uint64_t v : values) {
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), values.size());
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) /
                                   static_cast<double>(values.size()));
}

/** The documented contract: percentile(p) is the inclusive upper
 *  bound of the bucket holding the nearest-rank element, clamped to
 *  the exact max. Checked against a brute-force sorted reference. */
std::uint64_t
referencePercentile(std::vector<std::uint64_t> values, double p)
{
    std::sort(values.begin(), values.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    std::uint64_t exact = values[rank - 1];
    std::uint64_t high =
        Histogram::bucketHigh(Histogram::bucketFor(exact));
    std::uint64_t max = values.back();
    return high < max ? high : max;
}

TEST(Histogram, PercentilesMatchBruteForce)
{
    // Deterministic pseudo-random values (no host randomness).
    std::vector<std::uint64_t> values;
    std::uint64_t x = 12345;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        values.push_back(x % 10'000);
    }
    Histogram h;
    for (std::uint64_t v : values)
        h.record(v);
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                     100.0}) {
        EXPECT_EQ(h.percentile(p), referencePercentile(values, p))
            << "p=" << p;
    }
}

TEST(Histogram, ConstantDistributionPercentilesAreExact)
{
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(3);
    EXPECT_EQ(h.p50(), 3u);
    EXPECT_EQ(h.p95(), 3u);
    EXPECT_EQ(h.p99(), 3u);
}

TEST(Histogram, MergeIsAssociativeAndLossless)
{
    auto fill = [](Histogram &h, std::uint64_t seed, int n) {
        std::uint64_t x = seed;
        for (int i = 0; i < n; ++i) {
            x = x * 2862933555777941757ull + 3037000493ull;
            h.record(x % 100'000);
        }
    };
    Histogram a, b, c, all;
    fill(a, 1, 100);
    fill(b, 2, 200);
    fill(c, 3, 50);
    fill(all, 1, 100);
    fill(all, 2, 200);
    fill(all, 3, 50);

    // (a + b) + c
    Histogram left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    Histogram bc = b;
    bc.merge(c);
    Histogram right = a;
    right.merge(bc);

    for (const Histogram *h : {&left, &right}) {
        EXPECT_EQ(h->count(), all.count());
        EXPECT_EQ(h->sum(), all.sum());
        EXPECT_EQ(h->min(), all.min());
        EXPECT_EQ(h->max(), all.max());
        EXPECT_EQ(h->buckets(), all.buckets());
        EXPECT_EQ(h->p50(), all.p50());
        EXPECT_EQ(h->p99(), all.p99());
    }
}

TEST(Histogram, MergeEmptyKeepsMin)
{
    Histogram a, b;
    a.record(5);
    a.merge(b); // empty right-hand side
    EXPECT_EQ(a.min(), 5u);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // empty left-hand side adopts the other's min
    EXPECT_EQ(b.min(), 5u);
    EXPECT_EQ(b.max(), 5u);
}

// ---------------------------------------------------------------------
// Registry

TEST(Registry, ReferencesAreStableAndNamed)
{
    metrics::Registry reg;
    metrics::Counter &c = reg.counter("swaps");
    c.inc();
    reg.counter("other").inc(41);
    // The first reference still points at the same instrument after
    // more insertions (std::map node stability).
    c.inc();
    EXPECT_EQ(reg.counter("swaps").value, 2u);
    EXPECT_EQ(reg.counter("other").value, 41u);

    reg.gauge("depth").set(7);
    reg.histogram("lat").record(16);
    EXPECT_EQ(reg.gauges().at("depth").value, 7);
    EXPECT_EQ(reg.histograms().at("lat").count(), 1u);
}

TEST(Registry, MergeByName)
{
    metrics::Registry a, b;
    a.counter("x").inc(1);
    b.counter("x").inc(2);
    b.counter("only_b").inc(5);
    a.gauge("g").set(3);
    b.gauge("g").set(9);
    a.histogram("h").record(1);
    b.histogram("h").record(100);

    a.merge(b);
    EXPECT_EQ(a.counter("x").value, 3u);
    EXPECT_EQ(a.counter("only_b").value, 5u);
    EXPECT_EQ(a.gauge("g").value, 9); // merge keeps the max
    EXPECT_EQ(a.histogram("h").count(), 2u);
    EXPECT_EQ(a.histogram("h").max(), 100u);
}

// ---------------------------------------------------------------------
// Heatmap

TEST(Heatmap, PageGeometryAndRecording)
{
    EXPECT_EQ(AddressHeatmap::kPageBytes, 64u);
    EXPECT_EQ(AddressHeatmap::kPages, 1024u);
    EXPECT_EQ(AddressHeatmap::pageOf(0x0000), 0u);
    EXPECT_EQ(AddressHeatmap::pageOf(0x003F), 0u);
    EXPECT_EQ(AddressHeatmap::pageOf(0x0040), 1u);
    EXPECT_EQ(AddressHeatmap::baseOf(AddressHeatmap::pageOf(0x8123)),
              0x8100u); // 0x8123 & ~63
    AddressHeatmap hm;
    hm.recordFetch(0x8000);
    hm.recordFetch(0x8001);
    hm.recordRead(0x803F);
    hm.recordWrite(0x8040);
    hm.recordStall(0x8000, 3);
    const AddressHeatmap::Page &p0 = hm.page(AddressHeatmap::pageOf(0x8000));
    EXPECT_EQ(p0.fetch, 2u);
    EXPECT_EQ(p0.read, 1u);
    EXPECT_EQ(p0.write, 0u);
    EXPECT_EQ(p0.stall_cycles, 3u);
    EXPECT_EQ(hm.page(AddressHeatmap::pageOf(0x8040)).write, 1u);
    AddressHeatmap::Page t = hm.totals();
    EXPECT_EQ(t.fetch, 2u);
    EXPECT_EQ(t.read, 1u);
    EXPECT_EQ(t.write, 1u);
    EXPECT_EQ(t.stall_cycles, 3u);
}

TEST(Heatmap, TopPagesOrderAndMerge)
{
    AddressHeatmap a;
    for (int i = 0; i < 10; ++i)
        a.recordFetch(0x8000);
    for (int i = 0; i < 5; ++i)
        a.recordFetch(0x2000);
    a.recordStall(0x9000, 7);

    std::vector<unsigned> top = a.topPages(8);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], AddressHeatmap::pageOf(0x8000));
    EXPECT_EQ(top[1], AddressHeatmap::pageOf(0x9000));
    EXPECT_EQ(top[2], AddressHeatmap::pageOf(0x2000));

    // Ties break by address (deterministic reports).
    AddressHeatmap tie;
    tie.recordFetch(0x9000);
    tie.recordFetch(0x8000);
    std::vector<unsigned> t2 = tie.topPages(2);
    ASSERT_EQ(t2.size(), 2u);
    EXPECT_LT(t2[0], t2[1]);

    AddressHeatmap b;
    b.recordWrite(0x8000);
    a.merge(b);
    EXPECT_EQ(a.page(AddressHeatmap::pageOf(0x8000)).write, 1u);
    EXPECT_EQ(a.page(AddressHeatmap::pageOf(0x8000)).fetch, 10u);
}

// ---------------------------------------------------------------------
// Simulator integration: heatmap accounting == Stats, metrics do not
// perturb simulated results.

/** Per-region heatmap totals, classified like the report layer. */
std::map<std::string, AddressHeatmap::Page>
regionTotals(const AddressHeatmap &hm)
{
    std::map<std::string, AddressHeatmap::Page> out;
    for (unsigned i = 0; i < AddressHeatmap::kPages; ++i) {
        const AddressHeatmap::Page &p = hm.page(i);
        if (p.empty())
            continue;
        switch (sim::regionOf(AddressHeatmap::baseOf(i))) {
          case sim::RegionKind::Sram: out["sram"].merge(p); break;
          case sim::RegionKind::Fram: out["fram"].merge(p); break;
          case sim::RegionKind::Mmio: out["mmio"].merge(p); break;
          case sim::RegionKind::Unmapped: out["unmapped"].merge(p); break;
        }
    }
    return out;
}

void
expectHeatmapMatchesStats(const harness::Metrics &m)
{
    ASSERT_TRUE(m.run_metrics);
    auto regions = regionTotals(m.run_metrics->heatmap);
    const sim::Stats &s = m.stats;
    EXPECT_EQ(regions["sram"].fetch, s.sram.fetch);
    EXPECT_EQ(regions["sram"].read, s.sram.read);
    EXPECT_EQ(regions["sram"].write, s.sram.write);
    EXPECT_EQ(regions["fram"].fetch, s.fram.fetch);
    EXPECT_EQ(regions["fram"].read, s.fram.read);
    EXPECT_EQ(regions["fram"].write, s.fram.write);
    EXPECT_EQ(regions["mmio"].fetch, s.mmio.fetch);
    EXPECT_EQ(regions["mmio"].read, s.mmio.read);
    EXPECT_EQ(regions["mmio"].write, s.mmio.write);
    EXPECT_EQ(regions.count("unmapped"), 0u);

    // Every stalled FRAM access recorded one histogram sample; the
    // stall totals agree page-wise and in the histogram sum.
    EXPECT_EQ(m.run_metrics->fram_stall_cycles.sum(), s.stall_cycles);
    EXPECT_EQ(m.run_metrics->heatmap.totals().stall_cycles,
              s.stall_cycles);
}

harness::Metrics
runWithMetrics(const std::string &wl, harness::System system)
{
    harness::RunSpec spec = harness::sweepSpec(workload(wl), system);
    spec.observe.metrics = true;
    return harness::runOne(spec);
}

TEST(MetricsIntegration, HeatmapSumsToStatsBaseline)
{
    harness::Metrics m = runWithMetrics("crc", harness::System::Baseline);
    ASSERT_TRUE(m.done);
    expectHeatmapMatchesStats(m);
}

TEST(MetricsIntegration, HeatmapSumsToStatsSwapRam)
{
    harness::Metrics m = runWithMetrics("crc", harness::System::SwapRam);
    ASSERT_TRUE(m.done);
    expectHeatmapMatchesStats(m);

    // Each reconstructed miss span recorded one handler sample.
    EXPECT_EQ(m.run_metrics->miss_handler_cycles.count(),
              m.swap_summary.misses);
    EXPECT_EQ(m.run_metrics->miss_handler_cycles.sum(),
              m.swap_summary.handler_cycles);
}

TEST(MetricsIntegration, MetricsDoNotPerturbSimulatedResults)
{
    harness::RunSpec plain =
        harness::sweepSpec(workload("crc"), harness::System::SwapRam);
    harness::Metrics base = harness::runOne(plain);

    harness::Metrics with =
        runWithMetrics("crc", harness::System::SwapRam);
    EXPECT_EQ(with.checksum, base.checksum);
    EXPECT_EQ(with.stats.totalCycles(), base.stats.totalCycles());
    EXPECT_EQ(with.stats.instructions, base.stats.instructions);
    EXPECT_EQ(with.console, base.console);
    EXPECT_EQ(with.data_snapshot, base.data_snapshot);
}

TEST(MetricsIntegration, RunReportEmbedsMetricsJson)
{
    harness::RunSpec spec =
        harness::sweepSpec(workload("crc"), harness::System::SwapRam);
    spec.observe.metrics = true;
    harness::Metrics m = harness::runOne(spec);
    harness::RunReport report = harness::RunReport::make(spec, m);
    const support::json::Value doc = report.json();
    const auto &root = doc.asObject();
    ASSERT_TRUE(root.count("metrics"));
    const auto &mj = root.at("metrics").asObject();
    EXPECT_EQ(mj.at("schema").asString(), "swapram-metrics/v1");
    ASSERT_TRUE(mj.count("heatmap"));
    ASSERT_TRUE(mj.count("histograms"));
    const auto &hist = mj.at("histograms").asObject();
    ASSERT_TRUE(hist.count("fram_stall_cycles"));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  hist.at("fram_stall_cycles").asObject().at("sum")
                      .asInt()),
              m.stats.stall_cycles);
}

TEST(MetricsIntegration, RunMetricsMergeAcrossRuns)
{
    harness::Metrics a = runWithMetrics("crc", harness::System::Baseline);
    harness::Metrics b = runWithMetrics("rc4", harness::System::Baseline);
    metrics::RunMetrics merged;
    merged.merge(*a.run_metrics);
    merged.merge(*b.run_metrics);
    EXPECT_EQ(merged.heatmap.totals().fetch,
              a.run_metrics->heatmap.totals().fetch +
                  b.run_metrics->heatmap.totals().fetch);
    EXPECT_EQ(merged.fram_stall_cycles.sum(),
              a.stats.stall_cycles + b.stats.stall_cycles);
    EXPECT_EQ(merged.registry.counter("runs").value, 2u);
}

// ---------------------------------------------------------------------
// Engine progress

TEST(EngineProgress, CallbackCountsAndErrors)
{
    std::vector<harness::RunSpec> specs;
    specs.push_back(
        harness::sweepSpec(workload("crc"), harness::System::Baseline));
    specs.push_back(
        harness::sweepSpec(workload("rc4"), harness::System::Baseline));
    specs.push_back({}); // null workload -> captured error outcome

    for (unsigned jobs : {1u, 4u}) {
        harness::Engine engine(jobs);
        std::vector<std::size_t> dones;
        std::size_t final_errors = 0;
        std::vector<bool> seen(specs.size(), false);
        auto progress = [&](const harness::Progress &p) {
            EXPECT_EQ(p.total, specs.size());
            ASSERT_NE(p.outcome, nullptr);
            EXPECT_LT(p.index, specs.size());
            seen[p.index] = true;
            dones.push_back(p.done);
            final_errors = p.errors;
        };
        std::vector<harness::RunOutcome> outcomes =
            engine.runAll(specs, progress);
        ASSERT_EQ(dones.size(), specs.size()) << "jobs=" << jobs;
        // done is monotonically 1..N (the callback is serialized).
        std::vector<std::size_t> expect_dones;
        for (std::size_t i = 1; i <= specs.size(); ++i)
            expect_dones.push_back(i);
        EXPECT_EQ(dones, expect_dones) << "jobs=" << jobs;
        EXPECT_EQ(final_errors, 1u) << "jobs=" << jobs;
        EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                                [](bool b) { return b; }));
        EXPECT_TRUE(outcomes[2].error);
        EXPECT_FALSE(outcomes[2].error_text.empty());
    }
}

TEST(EngineProgress, NoCallbackStillRuns)
{
    harness::Engine engine(2);
    std::vector<harness::RunSpec> specs{
        harness::sweepSpec(workload("crc"), harness::System::Baseline)};
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok());
}

// ---------------------------------------------------------------------
// Flamegraph folded stacks

TEST(FoldedStacks, CyclesSumToAttribution)
{
    harness::RunSpec spec =
        harness::sweepSpec(workload("crc"), harness::System::SwapRam);
    spec.observe.profile = true;
    harness::Metrics m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    ASSERT_FALSE(m.folded.empty());

    std::uint64_t folded_sum = 0;
    bool saw_start_root = false;
    for (const trace::FoldedStack &f : m.folded) {
        EXPECT_GT(f.cycles, 0u);
        folded_sum += f.cycles;
        if (f.stack.rfind("__start", 0) == 0)
            saw_start_root = true;
    }
    // Every instruction lands in exactly one stack, so folded weights
    // sum to the profiler's total attribution == total cycles.
    EXPECT_EQ(folded_sum, m.stats.totalCycles());
    EXPECT_TRUE(saw_start_root);

    // The hot path shows up as a proper call chain under __start.
    bool saw_chain = false;
    for (const trace::FoldedStack &f : m.folded) {
        if (f.stack.find("__start;") == 0 &&
            f.stack.find(";crc_block") != std::string::npos)
            saw_chain = true;
    }
    EXPECT_TRUE(saw_chain);
}

TEST(FoldedStacks, DeterministicAcrossRuns)
{
    harness::RunSpec spec =
        harness::sweepSpec(workload("rc4"), harness::System::SwapRam);
    spec.observe.profile = true;
    harness::Metrics a = harness::runOne(spec);
    harness::Metrics b = harness::runOne(spec);
    ASSERT_EQ(a.folded.size(), b.folded.size());
    for (std::size_t i = 0; i < a.folded.size(); ++i) {
        EXPECT_EQ(a.folded[i].stack, b.folded[i].stack);
        EXPECT_EQ(a.folded[i].cycles, b.folded[i].cycles);
    }
}

} // namespace
