/**
 * @file
 * Golden conformance suite: checksum, total cycles, FRAM stall cycles,
 * swap-in count, and eviction count are pinned for every (workload ×
 * system × SRAM size) cell of the evaluation matrix in
 * tests/golden/expectations.json — the classic nine-workload matrix at
 * the platform default plus the capacity-pressure hit/thrash curve
 * (ISSUE 7). Any drift — an ISA timing change, a cache-runtime change,
 * a placement change — fails with a per-field diff and points at the
 * one-command regeneration path:
 *
 *     swapram_tool sweep --capacity --update-golden
 *
 * A second expectation file, tests/golden/expectations_noevict.json,
 * pins the SwapRAM matrix with eviction disabled. Those rows are the
 * pre-eviction runtime's exact numbers: cache::Options::evict = false
 * must generate a byte-for-byte identical runtime, so this suite is
 * the tripwire for any change that leaks into the evict-off image.
 * Regenerate (only when the baseline runtime itself changes) with:
 *
 *     swapram_tool sweep --systems swapram --no-evict \
 *         --update-golden --golden-out tests/golden/expectations_noevict.json
 *
 * The whole matrix runs through the harness engine at hardware
 * concurrency, so this suite also exercises the parallel path on every
 * CI run (including the ASan/UBSan and TSan jobs).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "harness/engine.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/platform.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

#ifndef SWAPRAM_GOLDEN_FILE
#error "build must define SWAPRAM_GOLDEN_FILE"
#endif
#ifndef SWAPRAM_GOLDEN_NOEVICT_FILE
#error "build must define SWAPRAM_GOLDEN_NOEVICT_FILE"
#endif

/** One pinned expectation row. */
struct Golden {
    std::uint16_t checksum = 0;
    std::uint64_t total_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t swap_ins = 0;
    std::uint64_t evictions = 0;
};

/** Expectations are keyed by (workload, system, sram_size). */
using Key = std::tuple<std::string, std::string, std::uint32_t>;

std::string
keyName(const Key &key)
{
    return std::get<0>(key) + "/" + std::get<1>(key) + "@" +
           std::to_string(std::get<2>(key));
}

std::map<Key, Golden>
loadExpectations(const char *path, const char *regen_hint)
{
    std::ifstream in(path);
    if (!in) {
        ADD_FAILURE() << "cannot open " << path << regen_hint;
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    support::json::Value doc = support::json::parse(buf.str());
    EXPECT_EQ(doc["schema"].asString(), "swapram-golden/v1");
    EXPECT_EQ(doc["placement"].asString(), "unified");
    EXPECT_EQ(doc["clock_hz"].asInt(), 24'000'000);

    std::map<Key, Golden> rows;
    for (const support::json::Value &e :
         doc["expectations"].asArray()) {
        Golden g;
        g.checksum =
            static_cast<std::uint16_t>(e["checksum"].asInt());
        g.total_cycles =
            static_cast<std::uint64_t>(e["total_cycles"].asInt());
        g.stall_cycles =
            static_cast<std::uint64_t>(e["stall_cycles"].asInt());
        g.swap_ins = static_cast<std::uint64_t>(e["swap_ins"].asInt());
        g.evictions =
            static_cast<std::uint64_t>(e["evictions"].asInt());
        rows[{e["workload"].asString(), e["system"].asString(),
              static_cast<std::uint32_t>(e["sram_size"].asInt())}] = g;
    }
    return rows;
}

/** Run @p specs and diff every outcome against its expectation row. */
void
checkAgainst(const std::map<Key, Golden> &expectations,
             const std::vector<Key> &keys,
             const std::vector<harness::RunSpec> &specs,
             const char *regen_hint)
{
    harness::Engine engine; // hardware concurrency
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);

    std::string diff;
    auto check = [&](const std::string &key, const char *field,
                     std::uint64_t expected, std::uint64_t got) {
        if (expected == got)
            return;
        diff += support::cat("  ", key, ".", field, ": expected ",
                             expected, ", got ", got, "\n");
    };
    for (std::size_t i = 0; i < keys.size(); ++i) {
        std::string key = keyName(keys[i]);
        auto it = expectations.find(keys[i]);
        if (it == expectations.end()) {
            diff += support::cat("  ", key, ": no expectation row\n");
            continue;
        }
        const harness::RunOutcome &o = outcomes[i];
        ASSERT_TRUE(o.ok()) << key << ": " << o.error_text;
        ASSERT_TRUE(o.metrics.fits) << key << ": "
                                    << o.metrics.fit_note;
        ASSERT_TRUE(o.metrics.done) << key << ": timeout";
        const Golden &g = it->second;
        check(key, "checksum", g.checksum, o.metrics.checksum);
        check(key, "total_cycles", g.total_cycles,
              o.metrics.stats.totalCycles());
        check(key, "stall_cycles", g.stall_cycles,
              o.metrics.stats.stall_cycles);
        check(key, "swap_ins", g.swap_ins,
              o.metrics.swap_summary.copy_ins);
        check(key, "evictions", g.evictions,
              o.metrics.swap_summary.evictions);
    }
    EXPECT_TRUE(diff.empty())
        << "golden conformance drift:\n" << diff << regen_hint;
}

TEST(GoldenConformance, AllWorkloadsAllSystemsMatchExpectations)
{
    const char kRegenHint[] =
        "\nIf this change is intentional, regenerate with:\n"
        "    swapram_tool sweep --capacity --update-golden\n";
    auto expectations =
        loadExpectations(SWAPRAM_GOLDEN_FILE, kRegenHint);
    ASSERT_FALSE(expectations.empty());

    const harness::System systems[] = {harness::System::Baseline,
                                       harness::System::SwapRam,
                                       harness::System::BlockCache};

    // Build the matrix in the same order the sweep tool uses: the
    // classic nine × three systems at the platform default, then the
    // --capacity rows.
    std::vector<Key> keys;
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload &w : workloads::all()) {
        for (harness::System system : systems) {
            keys.emplace_back(w.name, harness::systemName(system),
                              platform::kSramSize);
            specs.push_back(harness::sweepSpec(w, system));
        }
    }
    for (const harness::MatrixCell &mc : harness::capacityMatrix()) {
        keys.emplace_back(mc.workload->name,
                          harness::systemName(mc.system), mc.sram_size);
        specs.push_back(harness::capacitySpec(*mc.workload, mc.system,
                                              mc.sram_size));
    }
    EXPECT_EQ(keys.size(), expectations.size())
        << "expectation file does not cover the full matrix"
        << kRegenHint;

    checkAgainst(expectations, keys, specs, kRegenHint);
}

/** Evict-off must be the pre-eviction runtime, bit for bit: every
 *  pinned number — including the layout-sensitive cycle totals — has
 *  to match the values the nine workloads produced before eviction
 *  and the data pool existed. */
TEST(GoldenConformance, NoEvictMatchesPreEvictionRuntime)
{
    const char kRegenHint[] =
        "\nThe evict-off runtime drifted from its pre-eviction "
        "baseline.\nIf the baseline itself changed intentionally, "
        "regenerate with:\n"
        "    swapram_tool sweep --systems swapram --no-evict "
        "--update-golden \\\n"
        "        --golden-out tests/golden/expectations_noevict.json\n";
    auto expectations =
        loadExpectations(SWAPRAM_GOLDEN_NOEVICT_FILE, kRegenHint);
    ASSERT_FALSE(expectations.empty());

    std::vector<Key> keys;
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload &w : workloads::all()) {
        keys.emplace_back(w.name, "swapram", platform::kSramSize);
        harness::RunSpec spec =
            harness::sweepSpec(w, harness::System::SwapRam);
        spec.swap.evict = false;
        specs.push_back(spec);
    }
    EXPECT_EQ(keys.size(), expectations.size())
        << "expectation file does not cover the swapram matrix"
        << kRegenHint;

    checkAgainst(expectations, keys, specs, kRegenHint);
}

} // namespace
