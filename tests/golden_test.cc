/**
 * @file
 * Golden conformance suite: checksum, total cycles, FRAM stall cycles,
 * and swap-in count are pinned for every (workload × system) pair of
 * the evaluation matrix in tests/golden/expectations.json. Any drift —
 * an ISA timing change, a cache-runtime change, a placement change —
 * fails with a per-field diff and points at the one-command
 * regeneration path:
 *
 *     swapram_tool sweep --update-golden
 *
 * The whole matrix runs through the harness engine at hardware
 * concurrency, so this suite also exercises the parallel path on every
 * CI run (including the ASan/UBSan and TSan jobs).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "harness/engine.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

#ifndef SWAPRAM_GOLDEN_FILE
#error "build must define SWAPRAM_GOLDEN_FILE"
#endif

/** One pinned expectation row. */
struct Golden {
    std::uint16_t checksum = 0;
    std::uint64_t total_cycles = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t swap_ins = 0;
};

const char kRegenHint[] =
    "\nIf this change is intentional, regenerate with:\n"
    "    swapram_tool sweep --update-golden\n";

std::map<std::pair<std::string, std::string>, Golden>
loadExpectations()
{
    std::ifstream in(SWAPRAM_GOLDEN_FILE);
    if (!in) {
        ADD_FAILURE() << "cannot open " << SWAPRAM_GOLDEN_FILE
                      << kRegenHint;
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    support::json::Value doc = support::json::parse(buf.str());
    EXPECT_EQ(doc["schema"].asString(), "swapram-golden/v1");
    EXPECT_EQ(doc["placement"].asString(), "unified");
    EXPECT_EQ(doc["clock_hz"].asInt(), 24'000'000);

    std::map<std::pair<std::string, std::string>, Golden> rows;
    for (const support::json::Value &e :
         doc["expectations"].asArray()) {
        Golden g;
        g.checksum =
            static_cast<std::uint16_t>(e["checksum"].asInt());
        g.total_cycles =
            static_cast<std::uint64_t>(e["total_cycles"].asInt());
        g.stall_cycles =
            static_cast<std::uint64_t>(e["stall_cycles"].asInt());
        g.swap_ins = static_cast<std::uint64_t>(e["swap_ins"].asInt());
        rows[{e["workload"].asString(), e["system"].asString()}] = g;
    }
    return rows;
}

TEST(GoldenConformance, AllWorkloadsAllSystemsMatchExpectations)
{
    auto expectations = loadExpectations();
    ASSERT_FALSE(expectations.empty());

    const harness::System systems[] = {harness::System::Baseline,
                                       harness::System::SwapRam,
                                       harness::System::BlockCache};

    // Build the matrix in the same order the sweep tool uses.
    std::vector<std::pair<std::string, std::string>> keys;
    std::vector<harness::RunSpec> specs;
    for (const workloads::Workload &w : workloads::all()) {
        for (harness::System system : systems) {
            keys.emplace_back(w.name, harness::systemName(system));
            specs.push_back(harness::sweepSpec(w, system));
        }
    }
    EXPECT_EQ(keys.size(), expectations.size())
        << "expectation file does not cover the full matrix"
        << kRegenHint;

    harness::Engine engine; // hardware concurrency
    std::vector<harness::RunOutcome> outcomes = engine.runAll(specs);

    std::string diff;
    auto check = [&](const std::string &key, const char *field,
                     std::uint64_t expected, std::uint64_t got) {
        if (expected == got)
            return;
        diff += support::cat("  ", key, ".", field, ": expected ",
                             expected, ", got ", got, "\n");
    };
    for (std::size_t i = 0; i < keys.size(); ++i) {
        std::string key = keys[i].first + "/" + keys[i].second;
        auto it = expectations.find(keys[i]);
        if (it == expectations.end()) {
            diff += support::cat("  ", key, ": no expectation row\n");
            continue;
        }
        const harness::RunOutcome &o = outcomes[i];
        ASSERT_TRUE(o.ok()) << key << ": " << o.error_text;
        ASSERT_TRUE(o.metrics.fits) << key << ": "
                                    << o.metrics.fit_note;
        ASSERT_TRUE(o.metrics.done) << key << ": timeout";
        const Golden &g = it->second;
        check(key, "checksum", g.checksum, o.metrics.checksum);
        check(key, "total_cycles", g.total_cycles,
              o.metrics.stats.totalCycles());
        check(key, "stall_cycles", g.stall_cycles,
              o.metrics.stats.stall_cycles);
        check(key, "swap_ins", g.swap_ins,
              o.metrics.swap_summary.copy_ins);
    }
    EXPECT_TRUE(diff.empty())
        << "golden conformance drift:\n" << diff << kRegenHint;
}

} // namespace
