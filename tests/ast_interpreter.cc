#include "ast_interpreter.hh"

#include <unordered_map>

#include "support/logging.hh"
#include "support/platform.hh"

namespace swapram::test {

namespace {

using masm::AsmInstr;
using masm::AsmOperand;
using masm::Expr;
using masm::OperKind;
using masm::Statement;
using support::fatal;

/** Interpreter state. */
struct State {
    std::array<std::uint16_t, 16> regs{};
    std::vector<std::uint8_t> mem = std::vector<std::uint8_t>(0x10000, 0);
    bool done = false;
    std::string console;

    bool flag(std::uint16_t bit) const { return (regs[2] & bit) != 0; }
    void
    setFlag(std::uint16_t bit, bool value)
    {
        if (value)
            regs[2] |= bit;
        else
            regs[2] &= static_cast<std::uint16_t>(~bit);
    }
    void
    setNzcv(bool n, bool z, bool c, bool v)
    {
        setFlag(0x4, n);
        setFlag(0x2, z);
        setFlag(0x1, c);
        setFlag(0x100, v);
    }

    std::uint16_t
    read16(std::uint16_t addr)
    {
        if (addr & 1)
            fatal("interp: unaligned word read");
        return static_cast<std::uint16_t>(
            mem[addr] | (mem[static_cast<std::uint16_t>(addr + 1)] << 8));
    }
    std::uint8_t read8(std::uint16_t addr) { return mem[addr]; }
    void
    write16(std::uint16_t addr, std::uint16_t v)
    {
        if (addr & 1)
            fatal("interp: unaligned word write");
        if (addr == platform::kMmioDone) {
            done = true;
            return;
        }
        if (addr == platform::kMmioConsole) {
            console += static_cast<char>(v & 0xFF);
            return;
        }
        mem[addr] = static_cast<std::uint8_t>(v & 0xFF);
        mem[static_cast<std::uint16_t>(addr + 1)] =
            static_cast<std::uint8_t>(v >> 8);
    }
    void
    write8(std::uint16_t addr, std::uint8_t v)
    {
        if ((addr & ~1) == platform::kMmioDone) {
            done = true;
            return;
        }
        if ((addr & ~1) == platform::kMmioConsole) {
            console += static_cast<char>(v);
            return;
        }
        mem[addr] = v;
    }
};

/** Evaluate a symbolic expression against the resolved symbol table. */
std::int64_t
evalExpr(const Expr &e,
         const std::unordered_map<std::string, std::uint16_t> &symbols)
{
    switch (e.kind()) {
      case Expr::Kind::Number:
        return e.number();
      case Expr::Kind::Symbol: {
        auto it = symbols.find(e.symbol());
        if (it == symbols.end())
            fatal("interp: undefined symbol ", e.symbol());
        return it->second;
      }
      case Expr::Kind::Neg:
        return -evalExpr(e.operand(), symbols);
      default: {
        std::int64_t l = evalExpr(e.lhs(), symbols);
        std::int64_t r = evalExpr(e.rhs(), symbols);
        switch (e.kind()) {
          case Expr::Kind::Add: return l + r;
          case Expr::Kind::Sub: return l - r;
          case Expr::Kind::Mul: return l * r;
          case Expr::Kind::Div: return r ? l / r : 0;
          case Expr::Kind::ShiftLeft: return l << (r & 63);
          case Expr::Kind::ShiftRight:
            return static_cast<std::int64_t>(
                static_cast<std::uint64_t>(l) >> (r & 63));
          case Expr::Kind::And: return l & r;
          case Expr::Kind::Or: return l | r;
          default: fatal("interp: bad expr");
        }
      }
    }
}

/** A resolved operand: register, memory address, or immediate. */
struct Place {
    enum class Kind { Reg, Mem, Imm } kind;
    int reg = 0;
    std::uint16_t addr = 0;
    std::uint16_t imm = 0;
};

} // namespace

InterpResult
interpret(const masm::AssembleResult &assembled, std::uint16_t stack_top,
          std::uint64_t max_steps)
{
    const masm::Program &prog = assembled.relaxed;
    const auto &symbols = assembled.symbols;

    // Map instruction addresses to statement indices.
    std::unordered_map<std::uint16_t, std::size_t> addr_to_stmt;
    for (std::size_t i = 0; i < prog.stmts.size(); ++i) {
        if (prog.stmts[i].kind == Statement::Kind::Instr)
            addr_to_stmt.emplace(assembled.stmt_addr[i], i);
    }

    State st;
    for (const masm::Chunk &chunk : assembled.image.chunks) {
        for (std::size_t i = 0; i < chunk.bytes.size(); ++i)
            st.mem[static_cast<std::uint16_t>(chunk.base + i)] =
                chunk.bytes[i];
    }
    st.regs[0] = assembled.image.entry;
    st.regs[1] = stack_top;

    auto stmt_of = [&](std::uint16_t addr) -> std::size_t {
        auto it = addr_to_stmt.find(addr);
        if (it == addr_to_stmt.end())
            fatal("interp: control reached non-instruction address ",
                  addr);
        return it->second;
    };

    InterpResult out;
    std::size_t ip = stmt_of(assembled.image.entry);

    while (!st.done && out.steps < max_steps) {
        const Statement &s = prog.stmts[ip];
        const AsmInstr &in = s.instr;
        ++out.steps;
        std::uint16_t iaddr = assembled.stmt_addr[ip];
        std::uint16_t next_addr = static_cast<std::uint16_t>(
            iaddr + masm::instrSize(in));
        std::size_t next_ip = ip + 1;
        // Skip labels/directives when falling through.
        auto advance = [&](std::size_t from) {
            std::size_t j = from;
            while (j < prog.stmts.size() &&
                   prog.stmts[j].kind != Statement::Kind::Instr) {
                ++j;
            }
            if (j >= prog.stmts.size())
                fatal("interp: fell off program end");
            return j;
        };

        const bool byte = in.byte;
        const std::uint32_t mask = byte ? 0xFF : 0xFFFF;
        const std::uint32_t msb = byte ? 0x80 : 0x8000;

        auto resolve = [&](const AsmOperand &op) -> Place {
            switch (op.kind) {
              case OperKind::Register:
                return {Place::Kind::Reg, isa::regIndex(op.reg), 0, 0};
              case OperKind::Immediate:
                return {Place::Kind::Imm, 0, 0,
                        static_cast<std::uint16_t>(
                            evalExpr(op.expr, symbols) & 0xFFFF)};
              case OperKind::Indexed:
                return {Place::Kind::Mem, 0,
                        static_cast<std::uint16_t>(
                            st.regs[isa::regIndex(op.reg)] +
                            (evalExpr(op.expr, symbols) & 0xFFFF)),
                        0};
              case OperKind::SymbolicMem:
              case OperKind::Absolute:
                return {Place::Kind::Mem, 0,
                        static_cast<std::uint16_t>(
                            evalExpr(op.expr, symbols) & 0xFFFF),
                        0};
              case OperKind::Indirect:
                return {Place::Kind::Mem, 0,
                        st.regs[isa::regIndex(op.reg)], 0};
              case OperKind::IndirectInc: {
                int r = isa::regIndex(op.reg);
                Place p{Place::Kind::Mem, 0, st.regs[r], 0};
                st.regs[r] = static_cast<std::uint16_t>(
                    st.regs[r] + (byte ? 1 : 2));
                return p;
              }
            }
            fatal("interp: bad operand kind");
        };
        auto load = [&](const Place &p) -> std::uint16_t {
            switch (p.kind) {
              case Place::Kind::Reg: {
                std::uint16_t v = st.regs[p.reg];
                // Reading PC yields the next instruction address.
                if (p.reg == 0)
                    v = next_addr;
                return byte ? static_cast<std::uint16_t>(v & 0xFF) : v;
              }
              case Place::Kind::Imm:
                return byte ? static_cast<std::uint16_t>(p.imm & 0xFF)
                            : p.imm;
              case Place::Kind::Mem:
                return byte ? st.read8(p.addr) : st.read16(p.addr);
            }
            fatal("interp: bad place");
        };
        bool wrote_pc = false;
        auto store = [&](const Place &p, std::uint16_t v) {
            switch (p.kind) {
              case Place::Kind::Reg:
                if (p.reg == 3)
                    return; // constant generator: discarded
                if (p.reg == 0) {
                    wrote_pc = true;
                    next_ip = stmt_of(v);
                    return;
                }
                st.regs[p.reg] =
                    byte ? static_cast<std::uint16_t>(v & 0xFF) : v;
                return;
              case Place::Kind::Mem:
                if (byte)
                    st.write8(p.addr, static_cast<std::uint8_t>(v));
                else
                    st.write16(p.addr, v);
                return;
              case Place::Kind::Imm:
                fatal("interp: store to immediate");
            }
        };
        auto push = [&](std::uint16_t v) {
            st.regs[1] = static_cast<std::uint16_t>(st.regs[1] - 2);
            st.write16(st.regs[1], v);
        };
        auto pop = [&]() {
            std::uint16_t v = st.read16(st.regs[1]);
            st.regs[1] = static_cast<std::uint16_t>(st.regs[1] + 2);
            return v;
        };

        using isa::Op;
        switch (isa::opFormat(in.op)) {
          case isa::OpFormat::Jump: {
            bool taken = false;
            bool n = st.flag(0x4), z = st.flag(0x2), c = st.flag(0x1),
                 v = st.flag(0x100);
            switch (in.op) {
              case Op::Jne: taken = !z; break;
              case Op::Jeq: taken = z; break;
              case Op::Jnc: taken = !c; break;
              case Op::Jc: taken = c; break;
              case Op::Jn: taken = n; break;
              case Op::Jge: taken = n == v; break;
              case Op::Jl: taken = n != v; break;
              case Op::Jmp: taken = true; break;
              default: fatal("interp: bad jump");
            }
            if (taken) {
                next_ip = stmt_of(static_cast<std::uint16_t>(
                    evalExpr(in.jump_target, symbols) & 0xFFFF));
                wrote_pc = true;
            }
            break;
          }
          case isa::OpFormat::SingleOperand: {
            if (in.op == Op::Reti) {
                st.regs[2] = pop();
                next_ip = stmt_of(pop());
                wrote_pc = true;
                break;
            }
            Place p = resolve(*in.dst);
            switch (in.op) {
              case Op::Rrc: {
                std::uint32_t v0 = load(p);
                std::uint32_t r =
                    ((v0 >> 1) | (st.flag(0x1) ? msb : 0)) & mask;
                store(p, static_cast<std::uint16_t>(r));
                st.setNzcv((r & msb) != 0, r == 0, (v0 & 1) != 0,
                           false);
                break;
              }
              case Op::Rra: {
                std::uint32_t v0 = load(p);
                std::uint32_t r = ((v0 >> 1) | (v0 & msb)) & mask;
                store(p, static_cast<std::uint16_t>(r));
                st.setNzcv((r & msb) != 0, r == 0, (v0 & 1) != 0,
                           false);
                break;
              }
              case Op::Swpb: {
                std::uint16_t v0 = load(p);
                store(p, static_cast<std::uint16_t>((v0 >> 8) |
                                                    (v0 << 8)));
                break;
              }
              case Op::Sxt: {
                std::uint16_t v0 = load(p);
                std::uint16_t r = static_cast<std::uint16_t>(
                    static_cast<std::int16_t>(
                        static_cast<std::int8_t>(v0 & 0xFF)));
                store(p, r);
                st.setNzcv((r & 0x8000) != 0, r == 0, r != 0, false);
                break;
              }
              case Op::Push: {
                std::uint16_t v0 = load(p);
                st.regs[1] =
                    static_cast<std::uint16_t>(st.regs[1] - 2);
                if (byte)
                    st.write8(st.regs[1],
                              static_cast<std::uint8_t>(v0));
                else
                    st.write16(st.regs[1], v0);
                break;
              }
              case Op::Call: {
                std::uint16_t target = load(p);
                push(next_addr);
                next_ip = stmt_of(target);
                wrote_pc = true;
                break;
              }
              default:
                fatal("interp: bad format-II op");
            }
            break;
          }
          case isa::OpFormat::DoubleOperand: {
            Place ps = resolve(*in.src);
            std::uint32_t a = load(ps);
            Place pd = resolve(*in.dst);
            std::uint32_t d =
                in.op == Op::Mov ? 0 : load(pd);
            auto adder = [&](std::uint32_t x, std::uint32_t y,
                             std::uint32_t cin, bool wb) {
                std::uint32_t sum = x + y + cin;
                std::uint32_t r = sum & mask;
                bool v = ((~(x ^ y)) & (x ^ r) & msb) != 0;
                if (wb)
                    store(pd, static_cast<std::uint16_t>(r));
                st.setNzcv((r & msb) != 0, r == 0, sum > mask, v);
            };
            switch (in.op) {
              case Op::Mov:
                store(pd, static_cast<std::uint16_t>(a));
                break;
              case Op::Add: adder(a, d, 0, true); break;
              case Op::Addc:
                adder(a, d, st.flag(0x1) ? 1 : 0, true);
                break;
              case Op::Sub: adder(~a & mask, d, 1, true); break;
              case Op::Subc:
                adder(~a & mask, d, st.flag(0x1) ? 1 : 0, true);
                break;
              case Op::Cmp: adder(~a & mask, d, 1, false); break;
              case Op::Dadd: {
                std::uint32_t carry = st.flag(0x1) ? 1 : 0;
                std::uint32_t r = 0;
                int nibbles = byte ? 2 : 4;
                for (int k = 0; k < nibbles; ++k) {
                    std::uint32_t nib = ((a >> (4 * k)) & 0xF) +
                                        ((d >> (4 * k)) & 0xF) + carry;
                    carry = nib >= 10;
                    if (carry)
                        nib -= 10;
                    r |= (nib & 0xF) << (4 * k);
                }
                store(pd, static_cast<std::uint16_t>(r));
                st.setNzcv((r & msb) != 0, r == 0, carry != 0, false);
                break;
              }
              case Op::Bit:
              case Op::And: {
                std::uint32_t r = a & d;
                if (in.op == Op::And)
                    store(pd, static_cast<std::uint16_t>(r));
                st.setNzcv((r & msb) != 0, r == 0, r != 0, false);
                break;
              }
              case Op::Bic:
                store(pd, static_cast<std::uint16_t>(d & ~a & mask));
                break;
              case Op::Bis:
                store(pd, static_cast<std::uint16_t>(d | a));
                break;
              case Op::Xor: {
                std::uint32_t r = (a ^ d) & mask;
                bool v = (a & msb) && (d & msb);
                store(pd, static_cast<std::uint16_t>(r));
                st.setNzcv((r & msb) != 0, r == 0, r != 0, v);
                break;
              }
              default:
                fatal("interp: bad format-I op");
            }
            break;
          }
        }

        ip = wrote_pc ? next_ip : advance(next_ip);
    }

    out.done = st.done;
    out.regs = st.regs;
    out.memory = std::move(st.mem);
    out.console = std::move(st.console);
    return out;
}

} // namespace swapram::test
