/**
 * @file
 * Intermittent-execution fuzzing (ISSUE 2 satellite): random programs
 * x random fault schedules x execution systems must converge to the
 * same final state the uninterrupted run produces.
 *
 * For every fuzz seed the version-2 generator (byte ops, occasional
 * deterministic tick ISR) builds a program; each system first runs it
 * uninterrupted (the oracle for that system — cross-system agreement
 * is also asserted against the baseline), then under three fault
 * schedules derived from the oracle's cycle count: periodic reboots,
 * seeded-random gaps, and a single mid-run failure. Convergence means
 * done + identical checksum, .data/.bss snapshot, and console output.
 *
 * The default shard (24 seeds x 3 systems x 3 schedules = 216 faulted
 * runs) keeps CI fast; set SWAPRAM_FUZZ_EXTENDED=1 for the wide
 * sweep (seeds 100..199).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "harness/engine.hh"
#include "sim/fault.hh"
#include "fuzz_programs.hh"

namespace {

using namespace swapram;

struct Convergence {
    int faulted_runs = 0;
    std::uint64_t reboots = 0;
};

/** True when the faulted run reproduced the reference exactly. */
bool
converged(const harness::Metrics &ref, const harness::Metrics &got)
{
    return ref.done && got.done && ref.checksum == got.checksum &&
           ref.data_snapshot == got.data_snapshot &&
           ref.console == got.console;
}

/** Fault schedules derived from the uninterrupted run's length @p c
 *  so every schedule actually interrupts the program. */
std::vector<sim::FaultPlan>
schedulesFor(std::uint64_t c, std::uint32_t seed)
{
    std::vector<sim::FaultPlan> plans;
    plans.push_back(
        sim::FaultPlan::periodic(std::max<std::uint64_t>(c / 4, 50), 6));
    plans.push_back(sim::FaultPlan::random(
        std::max<std::uint64_t>(c / 8, 30),
        std::max<std::uint64_t>(c / 2, 60), seed, 8));
    plans.push_back(
        sim::FaultPlan::once(std::max<std::uint64_t>(c / 2, 25)));
    return plans;
}

/** Run one seed through all systems and schedules; EXPECT on every
 *  comparison and tally the faulted runs for the caller.
 *
 *  Two engine batches per seed: the three uninterrupted reference
 *  runs first (the fault schedules are derived from their cycle
 *  counts, so they are a genuine barrier), then every faulted run of
 *  every system at once. */
void
fuzzOneSeed(std::uint32_t seed, Convergence &tally,
            const harness::Engine &engine)
{
    test::FuzzOptions opts;
    opts.version = 2;
    opts.allow_interrupts = true;
    workloads::Workload w = test::randomProgram(seed, opts);

    const harness::System systems[] = {harness::System::Baseline,
                                       harness::System::SwapRam,
                                       harness::System::BlockCache};

    std::vector<harness::RunSpec> ref_specs;
    for (harness::System system : systems) {
        harness::RunSpec spec;
        spec.workload = &w;
        spec.system = system;
        ref_specs.push_back(spec);
    }
    std::vector<harness::RunOutcome> refs = engine.runAll(ref_specs);

    std::uint16_t oracle_checksum = 0;
    bool have_oracle = false;
    std::vector<harness::RunSpec> faulted_specs;
    std::vector<std::size_t> ref_of; // faulted index -> refs index
    for (std::size_t s = 0; s < ref_specs.size(); ++s) {
        ASSERT_TRUE(refs[s].ok())
            << "seed " << seed << ": " << refs[s].error_text;
        const harness::Metrics &ref = refs[s].metrics;
        if (!ref.fits)
            continue; // cache too small for this program shape
        ASSERT_TRUE(ref.done)
            << "seed " << seed << " system "
            << harness::systemName(ref_specs[s].system);
        if (!have_oracle) {
            oracle_checksum = ref.checksum;
            have_oracle = true;
        } else {
            EXPECT_EQ(ref.checksum, oracle_checksum)
                << "uninterrupted cross-system mismatch, seed "
                << seed;
        }
        for (const sim::FaultPlan &plan :
             schedulesFor(ref.stats.totalCycles(), seed)) {
            // Each faulted run goes in three times: threaded-code
            // dispatch, block-stepped superblock dispatch, single-step
            // oracle. All must converge, and because the injector
            // bounds every dispatched block, the failures must land
            // on the same cycles — identical reboot/cycle counts.
            harness::RunSpec faulted = ref_specs[s];
            faulted.intermittent.plan = plan;
            faulted.superblock = true;
            faulted.threaded = true;
            faulted_specs.push_back(faulted);
            ref_of.push_back(s);
            faulted.threaded = false;
            faulted_specs.push_back(faulted);
            ref_of.push_back(s);
            faulted.superblock = false;
            faulted_specs.push_back(faulted);
            ref_of.push_back(s);
        }
    }

    std::vector<harness::RunOutcome> outcomes =
        engine.runAll(faulted_specs);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const harness::Metrics &ref = refs[ref_of[i]].metrics;
        ASSERT_TRUE(outcomes[i].ok())
            << "seed " << seed << ": " << outcomes[i].error_text;
        const harness::Metrics &got = outcomes[i].metrics;
        EXPECT_TRUE(converged(ref, got))
            << "seed " << seed << " system "
            << harness::systemName(faulted_specs[i].system)
            << " plan kind "
            << static_cast<int>(faulted_specs[i].intermittent.plan.kind)
            << " superblock " << faulted_specs[i].superblock
            << " threaded " << faulted_specs[i].threaded
            << ": done=" << got.done << " checksum " << got.checksum
            << " vs " << ref.checksum << " console '" << got.console
            << "' vs '" << ref.console << "'";
        // Triplet layout: [threaded, block-stepped, oracle]. The
        // threaded run leads and the other two diff against it.
        if (faulted_specs[i].threaded) {
            ++tally.faulted_runs;
            tally.reboots += got.stats.reboots;
            continue;
        }
        const harness::Metrics &on =
            outcomes[faulted_specs[i].superblock ? i - 1 : i - 2]
                .metrics;
        std::string ctx = "seed " + std::to_string(seed) +
                          " tier twin divergence (superblock " +
                          std::to_string(faulted_specs[i].superblock) +
                          "), system " +
                          harness::systemName(faulted_specs[i].system);
        EXPECT_EQ(on.stats.reboots, got.stats.reboots) << ctx;
        EXPECT_EQ(on.stats.instructions, got.stats.instructions) << ctx;
        EXPECT_EQ(on.stats.base_cycles, got.stats.base_cycles) << ctx;
        EXPECT_EQ(on.stats.stall_cycles, got.stats.stall_cycles) << ctx;
        EXPECT_EQ(on.stats.recovery_cycles, got.stats.recovery_cycles)
            << ctx;
        EXPECT_EQ(on.checksum, got.checksum) << ctx;
        EXPECT_EQ(on.data_snapshot, got.data_snapshot) << ctx;
        EXPECT_EQ(on.console, got.console) << ctx;
    }
}

TEST(FuzzIntermittent, RandomProgramsConvergeAcrossFaultSchedules)
{
    Convergence tally;
    harness::Engine engine;
    for (std::uint32_t seed = 1; seed <= 24; ++seed)
        fuzzOneSeed(seed, tally, engine);
    // 24 seeds x 3 systems x 3 schedules (minus any DNF configs).
    EXPECT_GE(tally.faulted_runs, 200);
    // The schedules are sized to actually interrupt the programs.
    EXPECT_GT(tally.reboots, static_cast<std::uint64_t>(
                                 tally.faulted_runs));
}

TEST(FuzzIntermittent, CapacityWorkloadsConvergeAtSmallSram)
{
    // ISSUE 7 shard: the capacity workloads under power failures at
    // SRAM sizes where the SwapRAM runtime is constantly evicting
    // (arith_big/crc_big/pingpong) or tiling data through the pool
    // (rc4_big). Every schedule interrupts miss handling, eviction
    // scans, and __swp_din/__swp_dout copies many times over; the
    // converged final state proves __swp_recover rebuilds a
    // consistent cache/pool from any crash point.
    harness::Engine engine;
    int faulted_runs = 0;
    std::uint64_t reboots = 0;
    for (const workloads::Workload &w : workloads::capacity()) {
        for (std::uint32_t sram : {1024u, 4096u}) {
            harness::RunSpec spec = harness::capacitySpec(
                w, harness::System::SwapRam, sram);
            harness::RunOutcome ref =
                engine.runAll({spec}).front();
            ASSERT_TRUE(ref.ok()) << w.name << "@" << sram << ": "
                                  << ref.error_text;
            ASSERT_TRUE(ref.metrics.done) << w.name << "@" << sram;
            ASSERT_EQ(ref.metrics.checksum, w.expected)
                << w.name << "@" << sram;

            std::vector<harness::RunSpec> faulted_specs;
            for (const sim::FaultPlan &plan : schedulesFor(
                     ref.metrics.stats.totalCycles(), 7)) {
                harness::RunSpec faulted = spec;
                faulted.intermittent.plan = plan;
                faulted_specs.push_back(faulted);
            }
            auto outcomes = engine.runAll(faulted_specs);
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                ASSERT_TRUE(outcomes[i].ok())
                    << w.name << "@" << sram << ": "
                    << outcomes[i].error_text;
                EXPECT_TRUE(converged(ref.metrics,
                                      outcomes[i].metrics))
                    << w.name << "@" << sram << " plan kind "
                    << static_cast<int>(
                           faulted_specs[i].intermittent.plan.kind);
                ++faulted_runs;
                reboots += outcomes[i].metrics.stats.reboots;
            }
        }
    }
    EXPECT_EQ(faulted_runs, 24); // 4 workloads × 2 sizes × 3 plans
    EXPECT_GT(reboots, static_cast<std::uint64_t>(faulted_runs));
}

TEST(FuzzIntermittent, ExtendedSeedShard)
{
    const char *flag = std::getenv("SWAPRAM_FUZZ_EXTENDED");
    if (!flag || flag[0] == '\0' || flag[0] == '0')
        GTEST_SKIP()
            << "set SWAPRAM_FUZZ_EXTENDED=1 for the wide sweep";
    Convergence tally;
    harness::Engine engine;
    for (std::uint32_t seed = 100; seed < 200; ++seed)
        fuzzOneSeed(seed, tally, engine);
    EXPECT_GE(tally.faulted_runs, 800);
}

TEST(FuzzIntermittent, ExtendedHarvestTraceShard)
{
    // ISSUE 8 shard: the same random programs under harvest-trace
    // brown-outs instead of synthetic schedules, with periodic
    // checkpoints on the cache systems. Persistent state must converge
    // (console output is exempt: a checkpoint resume legitimately
    // replays console writes made since the last commit).
    const char *flag = std::getenv("SWAPRAM_FUZZ_EXTENDED");
    if (!flag || flag[0] == '\0' || flag[0] == '0')
        GTEST_SKIP()
            << "set SWAPRAM_FUZZ_EXTENDED=1 for the harvest sweep";

    harness::Engine engine;
    int faulted_runs = 0;
    std::uint64_t reboots = 0;
    for (std::uint32_t seed = 300; seed < 330; ++seed) {
        test::FuzzOptions opts;
        opts.version = 2;
        workloads::Workload w = test::randomProgram(seed, opts);

        for (harness::System system : {harness::System::SwapRam,
                                       harness::System::BlockCache}) {
            harness::RunSpec spec;
            spec.workload = &w;
            spec.system = system;
            spec.placement = harness::Placement::Standard;
            // Starve the cache so the miss handler — and with it the
            // per-miss commit hook — keeps firing for the whole run;
            // a warm cache stops committing and can only livelock.
            spec.sram_size = 1024;
            for (ckpt::Options *o : {&spec.swap.ckpt,
                                     &spec.block.ckpt}) {
                o->scheme = ckpt::Scheme::Periodic;
                o->period = 1;
            }
            harness::RunOutcome ref = engine.runAll({spec}).front();
            ASSERT_TRUE(ref.ok()) << "seed " << seed << ": "
                                  << ref.error_text;
            if (!ref.metrics.fits || !ref.metrics.done)
                continue;

            // Size the capacitor so a boot covers ~1/6 of the run;
            // vary the harvest shape with the seed.
            auto trace = std::make_shared<sim::HarvestTrace>(
                sim::HarvestTrace::fromPoints(
                    {{0.0, 30e-6 + 5e-6 * (seed % 5)},
                     {0.002, 80e-6},
                     {0.004, 20e-6}}));
            sim::CapacitorModel cap;
            cap.brown_out_pj = ref.metrics.energy_pj / 4;
            cap.power_on_pj =
                cap.brown_out_pj + ref.metrics.energy_pj / 6;
            cap.capacity_pj = cap.power_on_pj * 1.25;
            cap.initial_pj = cap.power_on_pj;
            cap.leak_watts = 1e-6;

            harness::RunSpec faulted = spec;
            faulted.intermittent.plan =
                sim::FaultPlan::harvest(trace, cap);
            faulted.intermittent.livelock_boots = 16;
            harness::RunOutcome out =
                engine.runAll({faulted}).front();
            ASSERT_TRUE(out.ok()) << "seed " << seed << ": "
                                  << out.error_text;
            const harness::Metrics &got = out.metrics;
            // Commits only happen at miss-handler entries, so a
            // random program whose working set fits can genuinely be
            // unable to checkpoint past its budget: an honest
            // livelock verdict is a valid outcome. What is NOT valid
            // is a crash, a timeout, or finishing with the wrong
            // state.
            if (!got.done) {
                ASSERT_EQ(got.stop, sim::RunResult::Stop::Livelock)
                    << "seed " << seed << " system "
                    << harness::systemName(system)
                    << " stop " << static_cast<int>(got.stop)
                    << " reboots " << got.stats.reboots;
                continue;
            }
            EXPECT_EQ(got.checksum, ref.metrics.checksum)
                << "seed " << seed;
            EXPECT_EQ(got.data_snapshot, ref.metrics.data_snapshot)
                << "seed " << seed;
            ++faulted_runs;
            reboots += got.stats.reboots;
        }
    }
    EXPECT_GE(faulted_runs, 20);
    EXPECT_GT(reboots, 0u);
}

} // namespace
