/**
 * @file
 * Power-failure fault injection and crash-safe recovery (ISSUE 2).
 *
 * Covers the FaultInjector schedules, the Machine's reboot semantics
 * (SRAM zeroed, FRAM preserved, .data/.bss re-initialised, CPU and
 * peripherals reset), the stale-redirection crash both cache runtimes
 * exhibit WITHOUT boot recovery (kept as a regression demonstration),
 * convergence WITH recovery, and the reboot/recovery accounting that
 * flows into Stats, SwapSummary, and the RunReport JSON.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "sim/fault.hh"
#include "support/logging.hh"
#include "testutil.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;

// ---- FaultInjector unit behaviour ----

TEST(FaultInjector, OnceFiresExactlyOnce)
{
    sim::FaultInjector fi(sim::FaultPlan::once(1000));
    EXPECT_FALSE(fi.shouldFail(0));
    EXPECT_FALSE(fi.shouldFail(999));
    EXPECT_TRUE(fi.shouldFail(1000));
    EXPECT_FALSE(fi.shouldFail(2000));
    EXPECT_FALSE(fi.shouldFail(1u << 30));
    EXPECT_EQ(fi.failures(), 1u);
}

TEST(FaultInjector, PeriodicGivesEachBootItsUptime)
{
    // Period counts uptime per boot: after a failure at cycle T the
    // next failure is scheduled at T + period, not at the next
    // multiple of the period.
    sim::FaultInjector fi(sim::FaultPlan::periodic(100));
    EXPECT_TRUE(fi.shouldFail(100));
    EXPECT_FALSE(fi.shouldFail(150));
    EXPECT_FALSE(fi.shouldFail(199));
    EXPECT_TRUE(fi.shouldFail(250)); // rescheduled to 250 + 100
    EXPECT_EQ(fi.nextFailureCycle(), 350u);
}

TEST(FaultInjector, MaxFailuresBoundsTheSchedule)
{
    sim::FaultInjector fi(sim::FaultPlan::periodic(10, 3));
    int failures = 0;
    for (std::uint64_t cycle = 0; cycle < 1000; ++cycle) {
        if (fi.shouldFail(cycle))
            ++failures;
    }
    EXPECT_EQ(failures, 3);
    EXPECT_EQ(fi.nextFailureCycle(), UINT64_MAX);
}

TEST(FaultInjector, RandomScheduleIsSeededAndBounded)
{
    auto gaps = [](std::uint32_t seed) {
        sim::FaultInjector fi(
            sim::FaultPlan::random(50, 500, seed, 20));
        std::vector<std::uint64_t> cycles;
        std::uint64_t prev = 0;
        for (std::uint64_t cycle = 0; cycle < 100'000; ++cycle) {
            if (fi.shouldFail(cycle)) {
                cycles.push_back(cycle - prev);
                prev = cycle;
            }
        }
        return cycles;
    };
    auto a = gaps(7), b = gaps(7), c = gaps(8);
    EXPECT_EQ(a, b);          // deterministic per seed
    EXPECT_NE(a, c);          // seed-dependent
    EXPECT_EQ(a.size(), 20u); // bounded by max_failures
    for (std::uint64_t g : a) {
        EXPECT_GE(g, 50u);
        EXPECT_LE(g, 500u); // gap bounds are inclusive
    }
}

// ---- Machine reboot semantics ----

/** A program that distinguishes boots via an FRAM cell (writable,
 *  persistent) and proves SRAM .data was re-initialised from the
 *  image rather than left holding the pre-failure value. */
TEST(PowerFail, RebootZeroesSramAndPreservesFram)
{
    // marker lives in .const (FRAM): the first boot flips it to 1 and
    // spins until power dies. The write survives the reboot, so the
    // second boot takes the exit path — after checking that scratch
    // (SRAM .data, clobbered to 0xAAAA before the failure) was
    // re-initialised to its image value.
    std::string source =
        "        .text\n"
        "__start:\n"
        "        MOV #0x3000, SP\n"
        "        CMP #7, &marker\n"
        "        JNE second_boot\n"
        "        MOV #1, &marker\n"
        "        MOV #0xAAAA, &scratch\n"
        "spin:   JMP spin\n"
        "second_boot:\n"
        "        MOV &scratch, R12\n"
        "        MOV R12, &observed\n"
        "        MOV #0xBEEF, R12\n"
        "        MOV R12, &bench_result\n"
        "        MOV.B #1, &__DONE\n"
        "halt:   JMP halt\n"
        "        .const\n        .align 2\n"
        "marker: .word 7\n"
        "        .data\n        .align 2\n"
        "scratch: .word 5\n"
        "observed: .word 0\n"
        "bench_result: .word 0\n";

    sim::MachineConfig config;
    masm::LayoutSpec layout;
    layout.data_base = 0x2000; // .data in SRAM
    auto assembled = masm::assemble(masm::parse(source), layout);
    sim::Machine machine(config);
    machine.load(assembled.image, 0x3000);
    sim::FaultInjector fi(sim::FaultPlan::once(200));
    machine.setFaultInjector(&fi);
    auto result = machine.run();

    ASSERT_TRUE(result.done);
    EXPECT_EQ(machine.stats().reboots, 1u);
    EXPECT_EQ(machine.peek16(assembled.symbol("bench_result")),
              0xBEEF);
    // The FRAM write persisted across the power cycle...
    EXPECT_EQ(machine.peek16(assembled.symbol("marker")), 1);
    // ...while the SRAM cell was re-initialised from the image.
    EXPECT_EQ(machine.peek16(assembled.symbol("observed")), 5);
}

TEST(PowerFail, BaselineWorkloadsConvergeAcrossReboots)
{
    const workloads::Workload *w = workloads::find("crc");
    ASSERT_NE(w, nullptr);
    harness::RunSpec spec;
    spec.workload = w;
    spec.intermittent.plan = sim::FaultPlan::periodic(5'000, 4);
    auto check = harness::checkIntermittent(spec);
    EXPECT_TRUE(check.match());
    EXPECT_EQ(check.faulted.stats.reboots, 4u);
    EXPECT_EQ(check.reference.stats.reboots, 0u);
}

// ---- The stale-redirection crash (regression demonstration) ----
//
// Without boot recovery, the FRAM-resident redirection metadata both
// cache runtimes keep survives the power loss while the SRAM copies
// it points into do not: the first redirected call after the reboot
// lands in zeroed memory and the machine faults decoding word 0.
// These tests pin the pre-fix behaviour; the Converge tests below pin
// the fix.

harness::RunSpec
faultedSpec(harness::System system, bool recovery)
{
    static workloads::Workload arith = workloads::makeArith();
    harness::RunSpec spec;
    spec.workload = &arith;
    spec.system = system;
    spec.intermittent.plan = sim::FaultPlan::periodic(5'000, 6);
    spec.swap.boot_recovery = recovery;
    spec.block.boot_recovery = recovery;
    return spec;
}

TEST(PowerFail, SwapRamCrashesOnStaleRedirectWithoutRecovery)
{
    auto spec = faultedSpec(harness::System::SwapRam, false);
    EXPECT_THROW(harness::runOne(spec), support::FatalError);
}

TEST(PowerFail, BlockCacheCrashesOnStaleMapWithoutRecovery)
{
    auto spec = faultedSpec(harness::System::BlockCache, false);
    EXPECT_THROW(harness::runOne(spec), support::FatalError);
}

TEST(PowerFail, SwapRamConvergesWithRecovery)
{
    auto spec = faultedSpec(harness::System::SwapRam, true);
    auto check = harness::checkIntermittent(spec);
    EXPECT_TRUE(check.match());
    EXPECT_EQ(check.faulted.stats.reboots, 6u);
    EXPECT_GT(check.faulted.stats.recovery_cycles, 0u);
    // The clean run's guarded recovery call is nearly free.
    EXPECT_LT(check.reference.stats.recovery_cycles, 50u);
}

TEST(PowerFail, BlockCacheConvergesWithRecovery)
{
    auto spec = faultedSpec(harness::System::BlockCache, true);
    auto check = harness::checkIntermittent(spec);
    EXPECT_TRUE(check.match());
    EXPECT_EQ(check.faulted.stats.reboots, 6u);
    EXPECT_GT(check.faulted.stats.recovery_cycles, 0u);
}

TEST(PowerFail, RecoveryCostScalesWithRebootCountNotRunLength)
{
    auto few = faultedSpec(harness::System::SwapRam, true);
    few.intermittent.plan = sim::FaultPlan::periodic(5'000, 2);
    auto many = faultedSpec(harness::System::SwapRam, true);
    many.intermittent.plan = sim::FaultPlan::periodic(5'000, 8);
    auto m_few = harness::runOne(few);
    auto m_many = harness::runOne(many);
    ASSERT_TRUE(m_few.done && m_many.done);
    EXPECT_EQ(m_few.stats.reboots, 2u);
    EXPECT_EQ(m_many.stats.reboots, 8u);
    // Per-reboot recovery cost is roughly constant.
    EXPECT_NEAR(static_cast<double>(m_many.stats.recovery_cycles) /
                    static_cast<double>(m_few.stats.recovery_cycles),
                4.0, 1.0);
}

// ---- Timeline + report accounting ----

TEST(PowerFail, TimelineRecordsPowerEventsAndReport)
{
    auto spec = faultedSpec(harness::System::SwapRam, true);
    spec.observe.swap_timeline = true;
    auto m = harness::runOne(spec);
    ASSERT_TRUE(m.done);
    EXPECT_EQ(m.swap_summary.power_failures, 6u);
    EXPECT_EQ(m.swap_summary.recovery_cycles,
              m.stats.recovery_cycles);

    int power_events = 0, recovery_events = 0;
    for (const trace::SwapEvent &e : m.swap_events) {
        if (e.kind == trace::EventKind::PowerFail)
            ++power_events;
        else if (e.kind == trace::EventKind::RecoveryExit)
            ++recovery_events;
    }
    EXPECT_EQ(power_events, 6);
    // One guarded (cheap) recovery on first boot + 6 recovery boots.
    EXPECT_EQ(recovery_events, 7);

    auto report = harness::RunReport::make(spec, m);
    std::string json = report.json().dump(0);
    EXPECT_NE(json.find("\"reboots\""), std::string::npos);
    EXPECT_NE(json.find("\"recovery_cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"power_failures\""), std::string::npos);
    std::string text = report.text();
    EXPECT_NE(text.find("power: reboots=6"), std::string::npos);
}

TEST(PowerFail, InterruptDrivenWorkloadSurvivesReboots)
{
    // A workload that expects a timer interrupt keeps its configured
    // period across reboots (timer state is reset like hardware).
    std::string source =
        "        .text\n"
        "fz_isr:\n"
        "        ADD #1, &ticks\n"
        "        CMP #3, &ticks\n"
        "        JNE fz_isr_ret\n"
        "        BIC #8, 0(SP)\n"
        "fz_isr_ret:\n"
        "        RETI\n"
        "        .func main\n"
        "        MOV #fz_isr, &0xFFF0\n"
        "        EINT\n"
        "wait:   CMP #3, &ticks\n"
        "        JNE wait\n"
        "        DINT\n"
        "        MOV &ticks, R12\n"
        "        MOV R12, &bench_result\n"
        "        RET\n"
        "        .endfunc\n"
        "        .data\n        .align 2\n"
        "ticks: .word 0\n"
        "bench_result: .word 0\n";
    workloads::Workload w;
    w.name = "isrwl";
    w.display = w.name;
    w.source = source;
    w.expected = 3;
    w.timer_period_cycles = 300;

    harness::RunSpec spec;
    spec.workload = &w;
    spec.include_lib = false;
    // Each boot gets 400 cycles: at most one 300-cycle-period tick
    // lands before power dies, so only the final boot completes.
    spec.intermittent.plan = sim::FaultPlan::periodic(400, 3);
    auto check = harness::checkIntermittent(spec);
    EXPECT_TRUE(check.match());
    EXPECT_EQ(check.reference.checksum, 3u);
    EXPECT_EQ(check.faulted.stats.reboots, 3u);
}

} // namespace
