/**
 * @file
 * Property tests for the shared assembly helper library: run each
 * helper inside the simulator over randomized inputs and compare with
 * native C++ semantics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "support/rng.hh"
#include "testutil.hh"
#include "workloads/workload.hh"

namespace {

using namespace swapram;
using isa::Reg;

/** Run `CALL #func` with R12..R14 preloaded; returns the machine. */
test::MiniRun
callHelper(const std::string &func, std::uint16_t r12, std::uint16_t r13,
           std::uint16_t r14 = 0, const std::string &extra_data = "")
{
    std::ostringstream os;
    os << "        .text\n"
          "__start:\n"
          "        MOV #0x3000, SP\n"
          "        MOV #" << r12 << ", R12\n"
          "        MOV #" << r13 << ", R13\n"
          "        MOV #" << r14 << ", R14\n"
          "        CALL #" << func << "\n"
          "        MOV.B #0, &__DONE\n"
          "__halt: JMP __halt\n"
       << workloads::libSource() << extra_data;
    return test::runSource(os.str());
}

TEST(LibAsm, MulhiMatchesNativeMultiply)
{
    support::Rng rng(0x11AA);
    for (int trial = 0; trial < 300; ++trial) {
        std::uint16_t a = rng.word();
        std::uint16_t b = rng.word();
        auto r = callHelper("__mulhi", a, b);
        ASSERT_TRUE(r.result.done);
        EXPECT_EQ(r.reg(Reg::R12),
                  static_cast<std::uint16_t>(a * b))
            << a << " * " << b;
    }
}

TEST(LibAsm, MulhiEdgeCases)
{
    for (auto [a, b] : {std::pair<int, int>{0, 0},
                        {0, 0xFFFF},
                        {0xFFFF, 0},
                        {1, 0xFFFF},
                        {0xFFFF, 0xFFFF},
                        {0x8000, 2},
                        {257, 255}}) {
        auto r = callHelper("__mulhi", static_cast<std::uint16_t>(a),
                            static_cast<std::uint16_t>(b));
        EXPECT_EQ(r.reg(Reg::R12), static_cast<std::uint16_t>(a * b));
    }
}

TEST(LibAsm, Umul32FullProduct)
{
    support::Rng rng(0x22BB);
    for (int trial = 0; trial < 300; ++trial) {
        std::uint16_t a = rng.word();
        std::uint16_t b = rng.word();
        auto r = callHelper("__umul32", a, b);
        std::uint32_t p = static_cast<std::uint32_t>(a) * b;
        EXPECT_EQ(r.reg(Reg::R12),
                  static_cast<std::uint16_t>(p & 0xFFFF));
        EXPECT_EQ(r.reg(Reg::R13),
                  static_cast<std::uint16_t>(p >> 16));
    }
}

TEST(LibAsm, Udiv16QuotientAndRemainder)
{
    support::Rng rng(0x33CC);
    for (int trial = 0; trial < 300; ++trial) {
        std::uint16_t a = rng.word();
        std::uint16_t b = static_cast<std::uint16_t>(1 + rng.below(0xFFFF));
        auto r = callHelper("__udiv16", a, b);
        EXPECT_EQ(r.reg(Reg::R12), static_cast<std::uint16_t>(a / b))
            << a << " / " << b;
        EXPECT_EQ(r.reg(Reg::R13), static_cast<std::uint16_t>(a % b))
            << a << " % " << b;
    }
}

TEST(LibAsm, Udiv16Edges)
{
    for (auto [a, b] : {std::pair<int, int>{0, 1},
                        {0xFFFF, 1},
                        {0xFFFF, 0xFFFF},
                        {1, 2},
                        {0x8000, 0x8000},
                        {0x8001, 0x8000},
                        {12345, 7}}) {
        auto r = callHelper("__udiv16", static_cast<std::uint16_t>(a),
                            static_cast<std::uint16_t>(b));
        EXPECT_EQ(r.reg(Reg::R12), a / b);
        EXPECT_EQ(r.reg(Reg::R13), a % b);
    }
}

TEST(LibAsm, MemcpyMovesBytes)
{
    std::string data = "        .data\n"
                       "mc_src: .byte 1, 2, 3, 4, 5, 6, 7\n"
                       "mc_dst: .space 7\n";
    std::ostringstream os;
    os << "        .text\n"
          "__start:\n"
          "        MOV #0x3000, SP\n"
          "        MOV #mc_dst, R12\n"
          "        MOV #mc_src, R13\n"
          "        MOV #7, R14\n"
          "        CALL #__memcpy\n"
          "        MOV.B #0, &__DONE\n"
       << workloads::libSource() << data;
    auto r = test::runSource(os.str());
    ASSERT_TRUE(r.result.done);
    std::uint16_t dst = r.assembled.symbol("mc_dst");
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(r.machine->peek8(static_cast<std::uint16_t>(dst + i)),
                  i + 1);
}

TEST(LibAsm, MemsetFillsBytes)
{
    std::string data = "        .data\n"
                       "ms_buf: .byte 9, 9, 9, 9, 9, 9\n"
                       "ms_tail: .byte 9\n";
    std::ostringstream os;
    os << "        .text\n"
          "__start:\n"
          "        MOV #0x3000, SP\n"
          "        MOV #ms_buf, R12\n"
          "        MOV #0xAB, R13\n"
          "        MOV #6, R14\n"
          "        CALL #__memset\n"
          "        MOV.B #0, &__DONE\n"
       << workloads::libSource() << data;
    auto r = test::runSource(os.str());
    ASSERT_TRUE(r.result.done);
    std::uint16_t buf = r.assembled.symbol("ms_buf");
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(r.machine->peek8(static_cast<std::uint16_t>(buf + i)),
                  0xAB);
    // One byte past the fill is untouched.
    EXPECT_EQ(r.machine->peek8(r.assembled.symbol("ms_tail")), 9);
}

TEST(LibAsm, HelpersWorkWhenCachedBySwapRam)
{
    // The helpers must stay correct when SwapRAM relocates them into
    // SRAM: drive __udiv16 through a loop so it gets cached, under a
    // deliberately tiny cache to force eviction churn as well.
    const char *source = R"(
        .text
        .func main
        PUSH R10
        PUSH R9
        MOV #200, R10
        CLR R9
dm_loop:
        MOV R10, R12
        RLA R12
        RLA R12
        ADD #17, R12
        MOV #7, R13
        CALL #__udiv16
        ADD R12, R9
        ADD R13, R9
        DEC R10
        JNZ dm_loop
        MOV R9, R12
        MOV R12, &bench_result
        POP R9
        POP R10
        RET
        .endfunc
        .data
        .align 2
bench_result: .word 0
)";
    std::uint16_t expect = 0;
    for (int i = 200; i >= 1; --i) {
        std::uint16_t v = static_cast<std::uint16_t>(4 * i + 17);
        expect = static_cast<std::uint16_t>(expect + v / 7 + v % 7);
    }
    workloads::Workload w;
    w.name = "divloop";
    w.display = "DIV";
    w.source = source;
    w.expected = expect;
    for (auto system :
         {harness::System::Baseline, harness::System::SwapRam}) {
        harness::RunSpec spec;
        spec.workload = &w;
        spec.system = system;
        spec.swap.cache_end = 0x2080; // 128 B: forces churn
        auto m = harness::runOne(spec);
        ASSERT_TRUE(m.done);
        EXPECT_EQ(m.checksum, expect)
            << harness::systemName(system);
    }
}

} // namespace
