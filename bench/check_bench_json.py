#!/usr/bin/env python3
"""CI smoke: validate a `bench_simperf --json` swapram-bench/v1
document — schema id, the execution-tier enum (every variant name must
be a known tier, every expected tier must be present), internally
consistent throughput and speedup numbers. Performance itself is not
asserted (CI machines are noisy); BENCH_PR9.json records the reference
run.

Usage:
  check_bench_json.py <bench_simperf>     run the binary, check stdout
  check_bench_json.py --file <doc.json>   check a committed document
  check_bench_json.py --self-test         negative tests of the checker
"""

import copy
import json
import subprocess
import sys

# The closed tier enum: a variant name outside this set is a report
# bug (a renamed or misspelled tier would otherwise slip past CI).
TIER_ENUM = frozenset(
    ["no_predecode", "predecode", "superblock", "threaded", "metrics"])
EXPECTED_VARIANTS = ["no_predecode", "predecode", "superblock",
                     "threaded", "metrics"]
EXPECTED_SPEEDUPS = [
    ("predecode_vs_no_predecode", "predecode", "no_predecode"),
    ("superblock_vs_predecode", "superblock", "predecode"),
    ("superblock_vs_no_predecode", "superblock", "no_predecode"),
    ("threaded_vs_superblock", "threaded", "superblock"),
    ("threaded_vs_no_predecode", "threaded", "no_predecode"),
    ("metrics_vs_predecode", "metrics", "predecode"),
]


class CheckError(Exception):
    pass


def check(cond, message):
    if not cond:
        raise CheckError(message)


def validate(doc):
    check(doc.get("schema") == "swapram-bench/v1",
          f"bad schema id: {doc.get('schema')!r}")
    check(doc.get("benchmark") == "BM_SimulatorThroughput",
          f"bad benchmark name: {doc.get('benchmark')!r}")
    check(doc.get("workload"), "missing workload")
    check(doc.get("repeats", 0) >= 1, "repeats must be >= 1")

    variants = {v["name"]: v for v in doc["variants"]}
    unknown = sorted(set(variants) - TIER_ENUM)
    check(not unknown, f"unrecognized tier(s) in report: {unknown}")
    missing = sorted(set(EXPECTED_VARIANTS) - set(variants))
    check(not missing, f"missing tier(s) in report: {missing}")
    instr = {v["instructions"] for v in variants.values()}
    check(len(instr) == 1, f"tiers ran different programs: {instr}")
    for v in variants.values():
        check(v["instructions"] > 0, f"no instructions: {v}")
        check(v["best_seconds"] > 0, f"non-positive time: {v}")
        rate = v["instructions"] / v["best_seconds"]
        check(abs(rate - v["instr_per_s"]) < 1e-6 * rate,
              f"inconsistent instr_per_s: {v}")

    for key, num, den in EXPECTED_SPEEDUPS:
        check(key in doc.get("speedup", {}), f"missing speedup: {key}")
        got = doc["speedup"][key]
        want = (variants[num]["instr_per_s"] /
                variants[den]["instr_per_s"])
        check(abs(got - want) < 1e-9 * max(want, 1.0),
              f"inconsistent speedup {key}: {got} vs {want}")
    return variants


def self_test():
    """The checker must reject each of these corruptions; a validator
    that silently passes a bad report is worse than none."""
    base = {
        "schema": "swapram-bench/v1",
        "benchmark": "BM_SimulatorThroughput",
        "workload": "crc",
        "repeats": 3,
        "variants": [
            {"name": n, "instructions": 1000, "best_seconds": 0.5,
             "instr_per_s": 2000.0} for n in EXPECTED_VARIANTS
        ],
        "speedup": {k: 1.0 for k, _, _ in EXPECTED_SPEEDUPS},
    }
    validate(copy.deepcopy(base))  # the clean document must pass

    def corrupt(mutate, label):
        doc = copy.deepcopy(base)
        mutate(doc)
        try:
            validate(doc)
        except CheckError:
            return
        sys.exit(f"self-test: corruption not rejected: {label}")

    corrupt(lambda d: d.update(schema="swapram-bench/v2"), "schema id")
    corrupt(lambda d: d["variants"].append(
        {"name": "turbo", "instructions": 1000, "best_seconds": 0.5,
         "instr_per_s": 2000.0}), "unrecognized tier")
    corrupt(lambda d: d["variants"].pop(), "missing tier")
    corrupt(lambda d: d["variants"][0].update(instructions=999),
            "tier instruction mismatch")
    corrupt(lambda d: d["variants"][0].update(instr_per_s=1.0),
            "inconsistent throughput")
    corrupt(lambda d: d["speedup"].update(threaded_vs_superblock=9.0),
            "inconsistent speedup")
    corrupt(lambda d: d["speedup"].pop("threaded_vs_superblock"),
            "missing speedup key")
    print("self-test ok: all corrupted reports rejected")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) == 3 and sys.argv[1] == "--file":
        with open(sys.argv[2]) as f:
            out = f.read()
    elif len(sys.argv) == 2:
        out = subprocess.run([sys.argv[1], "--json"], check=True,
                             capture_output=True, text=True).stdout
    else:
        sys.exit("usage: check_bench_json.py <bench_simperf> | "
                 "--file <doc.json> | --self-test")
    try:
        variants = validate(json.loads(out))
    except CheckError as e:
        sys.exit(f"swapram-bench/v1 invalid: {e}")
    print("swapram-bench/v1 ok:",
          ", ".join(f"{n} {variants[n]['instr_per_s'] / 1e6:.1f}M/s"
                    for n in EXPECTED_VARIANTS))


if __name__ == "__main__":
    main()
