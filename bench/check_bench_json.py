#!/usr/bin/env python3
"""CI smoke: validate the `bench_simperf --json` swapram-bench/v1
document — schema id, the three execution tiers plus the
metrics-attached variant, internally consistent throughput and speedup
numbers. Performance itself is not asserted (CI machines are noisy);
BENCH_PR7.json records the reference run."""

import json
import subprocess
import sys

EXPECTED_VARIANTS = ["no_predecode", "predecode", "superblock",
                     "metrics"]
EXPECTED_SPEEDUPS = [
    ("predecode_vs_no_predecode", "predecode", "no_predecode"),
    ("superblock_vs_predecode", "superblock", "predecode"),
    ("superblock_vs_no_predecode", "superblock", "no_predecode"),
    ("metrics_vs_predecode", "metrics", "predecode"),
]


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: check_bench_json.py <bench_simperf>")
    out = subprocess.run([sys.argv[1], "--json"], check=True,
                         capture_output=True, text=True).stdout
    doc = json.loads(out)

    assert doc["schema"] == "swapram-bench/v1", doc.get("schema")
    assert doc["benchmark"] == "BM_SimulatorThroughput"
    assert doc["workload"]
    assert doc["repeats"] >= 1

    variants = {v["name"]: v for v in doc["variants"]}
    assert sorted(variants) == sorted(EXPECTED_VARIANTS), list(variants)
    instr = {v["instructions"] for v in variants.values()}
    assert len(instr) == 1, f"tiers ran different programs: {instr}"
    for v in variants.values():
        assert v["instructions"] > 0, v
        assert v["best_seconds"] > 0, v
        rate = v["instructions"] / v["best_seconds"]
        assert abs(rate - v["instr_per_s"]) < 1e-6 * rate, v

    for key, num, den in EXPECTED_SPEEDUPS:
        got = doc["speedup"][key]
        want = (variants[num]["instr_per_s"] /
                variants[den]["instr_per_s"])
        assert abs(got - want) < 1e-9 * max(want, 1.0), (key, got, want)

    print("swapram-bench/v1 ok:",
          ", ".join(f"{n} {variants[n]['instr_per_s'] / 1e6:.1f}M/s"
                    for n in EXPECTED_VARIANTS))


if __name__ == "__main__":
    main()
