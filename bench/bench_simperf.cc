/**
 * @file
 * google-benchmark microbenchmarks of the infrastructure itself:
 * simulator throughput (simulated instructions per wall second) across
 * the host-side execution tiers (oracle / predecode / superblock /
 * threaded), assembler speed, and the SwapRAM/block-cache build passes.
 *
 * Benchmark hygiene: Machine construction and image loading happen
 * outside the timed region (PauseTiming/ResumeTiming) — only run() is
 * measured. The superblock engine's block table allocation and the
 * assembler would otherwise dominate short iterations.
 *
 * Invoked as `bench_simperf --json[=PATH]` it skips google-benchmark
 * and emits a machine-readable `swapram-bench/v1` document comparing
 * the tiers (see BENCH_PR9.json and the CI smoke check).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/placement.hh"
#include "harness/runner.hh"
#include "metrics/run_metrics.hh"
#include "blockcache/builder.hh"
#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"
#include "support/json.hh"
#include "swapram/builder.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

std::string
crcSource()
{
    static const std::string source =
        harness::startupSource(0xFF80) + workloads::makeCrc().source +
        workloads::libSource();
    return source;
}

const masm::AssembleResult &
crcAssembled()
{
    static const masm::AssembleResult assembled =
        masm::assemble(masm::parse(crcSource()), masm::LayoutSpec{});
    return assembled;
}

/** The four host-side execution tiers under measurement. The threaded
 *  tier replaces superblock dispatch when enabled, so the superblock
 *  variant pins it off to measure the block-stepped interpreter. */
sim::MachineConfig
tierConfig(bool predecode, bool superblock, bool threaded = false)
{
    sim::MachineConfig config;
    config.predecode_enabled = predecode;
    config.superblock_enabled = superblock;
    config.threaded_enabled = threaded;
    return config;
}

/** Timed run() only; Machine setup is excluded from the measurement. */
void
runThroughput(benchmark::State &state, const sim::MachineConfig &config)
{
    const masm::AssembleResult &assembled = crcAssembled();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        state.PauseTiming();
        sim::Machine machine(config);
        machine.load(assembled.image, 0xFF80);
        state.ResumeTiming();
        auto result = machine.run();
        benchmark::DoNotOptimize(result.done);
        instructions += machine.stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

/** Full fast-path stack: predecode + threaded-code dispatch over hot
 *  superblocks (falls back to block stepping where unavailable). */
void
BM_SimulatorThroughput(benchmark::State &state)
{
    runThroughput(state, tierConfig(true, true, true));
}

/** Block-stepped superblock dispatch with the threaded tier pinned
 *  off — the interpreter the threaded tier is compared against. */
void
BM_SimulatorThroughputSuperblock(benchmark::State &state)
{
    runThroughput(state, tierConfig(true, true));
}

/** Predecode only — PR 3's fast path, the superblock baseline. */
void
BM_SimulatorThroughputNoSuperblock(benchmark::State &state)
{
    runThroughput(state, tierConfig(true, false));
}

/** The always-decode single-step oracle (both fast paths off). */
void
BM_SimulatorThroughputNoPredecode(benchmark::State &state)
{
    runThroughput(state, tierConfig(false, false));
}

/** Same run with the full observability stack attached, to size the
 *  cost of tracing relative to BM_SimulatorThroughput (the disabled
 *  path is a null-pointer check and must stay within noise of it).
 *  Tracing forces the oracle, so compare against NoSuperblock. */
void
BM_SimulatorThroughputTraced(benchmark::State &state)
{
    const masm::AssembleResult &assembled = crcAssembled();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        state.PauseTiming();
        sim::Machine machine;
        machine.load(assembled.image, 0xFF80);
        trace::TraceEngine engine(trace::kCatAll);
        trace::FunctionProfiler profiler;
        for (const auto &f : assembled.functions)
            profiler.addFunction(f.name, f.addr, f.size);
        profiler.seal();
        machine.setTraceEngine(&engine);
        machine.setProfiler(&profiler);
        state.ResumeTiming();
        auto result = machine.run();
        benchmark::DoNotOptimize(result.done);
        benchmark::DoNotOptimize(engine.emitted());
        instructions += machine.stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

/** Same run with a metrics collector attached (heatmap + stall
 *  histogram recorded per bus access). The disabled path — what
 *  BM_SimulatorThroughput measures with metrics compiled in — is one
 *  null-pointer check per access and must stay within noise of it.
 *  Attached metrics force single-step, so compare vs NoSuperblock. */
void
BM_SimulatorThroughputMetrics(benchmark::State &state)
{
    const masm::AssembleResult &assembled = crcAssembled();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        state.PauseTiming();
        sim::Machine machine;
        machine.load(assembled.image, 0xFF80);
        metrics::RunMetrics rm;
        machine.setMetrics(&rm);
        state.ResumeTiming();
        auto result = machine.run();
        benchmark::DoNotOptimize(result.done);
        benchmark::DoNotOptimize(rm.heatmap.totals().fetch);
        instructions += machine.stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_Assemble(benchmark::State &state)
{
    auto program = masm::parse(crcSource());
    for (auto _ : state) {
        auto result = masm::assemble(program, masm::LayoutSpec{});
        benchmark::DoNotOptimize(result.image.entry);
    }
}

void
BM_Parse(benchmark::State &state)
{
    std::string source = crcSource();
    for (auto _ : state) {
        auto program = masm::parse(source);
        benchmark::DoNotOptimize(program.stmts.size());
    }
}

void
BM_SwapRamBuild(benchmark::State &state)
{
    auto program = masm::parse(crcSource());
    for (auto _ : state) {
        auto info = cache::build(program, masm::LayoutSpec{}, {});
        benchmark::DoNotOptimize(info.reloc_count);
    }
}

void
BM_BlockCacheBuild(benchmark::State &state)
{
    auto program = masm::parse(crcSource());
    for (auto _ : state) {
        auto info = bb::build(program, masm::LayoutSpec{}, {});
        benchmark::DoNotOptimize(info.n_blocks);
    }
}

BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputSuperblock)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputNoSuperblock)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputNoPredecode)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputTraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputMetrics)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parse)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwapRamBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockCacheBuild)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// --json mode: the swapram-bench/v1 report.

/** One tier measured for the JSON report: untimed setup, timed run(),
 *  repeated; the fastest repeat is the throughput (least interference
 *  from the host). */
struct TierResult {
    std::uint64_t instructions = 0; ///< per run
    double best_seconds = 0;

    double
    instrPerSec() const
    {
        return best_seconds > 0
                   ? static_cast<double>(instructions) / best_seconds
                   : 0.0;
    }
};

TierResult
measureTier(const sim::MachineConfig &config, int repeats,
            bool with_metrics = false)
{
    TierResult r;
    for (int i = 0; i < repeats; ++i) {
        sim::Machine machine(config);
        machine.load(crcAssembled().image, 0xFF80);
        metrics::RunMetrics rm;
        if (with_metrics)
            machine.setMetrics(&rm);
        auto t0 = std::chrono::steady_clock::now();
        auto result = machine.run();
        auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(result.done);
        if (with_metrics)
            benchmark::DoNotOptimize(rm.heatmap.totals().fetch);
        double s = std::chrono::duration<double>(t1 - t0).count();
        if (i == 0 || s < r.best_seconds)
            r.best_seconds = s;
        r.instructions = machine.stats().instructions;
    }
    return r;
}

int
emitJsonReport(const std::string &path)
{
    namespace json = support::json;
    const int repeats = 7;
    TierResult oracle = measureTier(tierConfig(false, false), repeats);
    TierResult predecode = measureTier(tierConfig(true, false), repeats);
    TierResult superblock = measureTier(tierConfig(true, true), repeats);
    TierResult threaded =
        measureTier(tierConfig(true, true, true), repeats);
    // Metrics attached force single-step, so the honest reference is
    // the predecode tier; disabled-metrics cost is the superblock
    // variant itself (the pointer is compiled in and null there).
    TierResult with_metrics =
        measureTier(tierConfig(true, true), repeats, true);

    auto variant = [](const char *name, const TierResult &r) {
        return json::Value(json::Object{
            {"name", name},
            {"instructions", r.instructions},
            {"best_seconds", r.best_seconds},
            {"instr_per_s", r.instrPerSec()},
        });
    };
    auto ratio = [](const TierResult &a, const TierResult &b) {
        return b.instrPerSec() > 0 ? a.instrPerSec() / b.instrPerSec()
                                   : 0.0;
    };
    json::Value doc(json::Object{
        {"schema", "swapram-bench/v1"},
        {"benchmark", "BM_SimulatorThroughput"},
        {"workload", "crc"},
        {"repeats", repeats},
        {"variants", json::Array{
                         variant("no_predecode", oracle),
                         variant("predecode", predecode),
                         variant("superblock", superblock),
                         variant("threaded", threaded),
                         variant("metrics", with_metrics),
                     }},
        {"speedup",
         json::Object{
             {"predecode_vs_no_predecode", ratio(predecode, oracle)},
             {"superblock_vs_predecode", ratio(superblock, predecode)},
             {"superblock_vs_no_predecode", ratio(superblock, oracle)},
             {"threaded_vs_superblock", ratio(threaded, superblock)},
             {"threaded_vs_no_predecode", ratio(threaded, oracle)},
             {"metrics_vs_predecode", ratio(with_metrics, predecode)},
         }},
    });
    std::string text = doc.dump(2);
    text.push_back('\n');
    if (path.empty()) {
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_simperf: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return emitJsonReport("");
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            return emitJsonReport(argv[i] + 7);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
