/**
 * @file
 * google-benchmark microbenchmarks of the infrastructure itself:
 * simulator throughput (simulated instructions per wall second),
 * assembler speed, and the SwapRAM/block-cache build passes.
 */

#include <benchmark/benchmark.h>

#include "harness/placement.hh"
#include "harness/runner.hh"
#include "blockcache/builder.hh"
#include "masm/assembler.hh"
#include "masm/parser.hh"
#include "sim/machine.hh"
#include "swapram/builder.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

using namespace swapram;

namespace {

std::string
crcSource()
{
    static const std::string source =
        harness::startupSource(0xFF80) + workloads::makeCrc().source +
        workloads::libSource();
    return source;
}

void
BM_SimulatorThroughput(benchmark::State &state)
{
    auto assembled =
        masm::assemble(masm::parse(crcSource()), masm::LayoutSpec{});
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Machine machine;
        machine.load(assembled.image, 0xFF80);
        auto result = machine.run();
        benchmark::DoNotOptimize(result.done);
        instructions += machine.stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

/** The always-decode path: BM_SimulatorThroughput with the predecode
 *  cache disabled. The ratio of the two is the fast path's speedup
 *  (and the differential tests pin their behavioral equivalence). */
void
BM_SimulatorThroughputNoPredecode(benchmark::State &state)
{
    auto assembled =
        masm::assemble(masm::parse(crcSource()), masm::LayoutSpec{});
    sim::MachineConfig config;
    config.predecode_enabled = false;
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Machine machine(config);
        machine.load(assembled.image, 0xFF80);
        auto result = machine.run();
        benchmark::DoNotOptimize(result.done);
        instructions += machine.stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

/** Same run with the full observability stack attached, to size the
 *  cost of tracing relative to BM_SimulatorThroughput (the disabled
 *  path is a null-pointer check and must stay within noise of it). */
void
BM_SimulatorThroughputTraced(benchmark::State &state)
{
    auto assembled =
        masm::assemble(masm::parse(crcSource()), masm::LayoutSpec{});
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::Machine machine;
        machine.load(assembled.image, 0xFF80);
        trace::TraceEngine engine(trace::kCatAll);
        trace::FunctionProfiler profiler;
        for (const auto &f : assembled.functions)
            profiler.addFunction(f.name, f.addr, f.size);
        profiler.seal();
        machine.setTraceEngine(&engine);
        machine.setProfiler(&profiler);
        auto result = machine.run();
        benchmark::DoNotOptimize(result.done);
        benchmark::DoNotOptimize(engine.emitted());
        instructions += machine.stats().instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_Assemble(benchmark::State &state)
{
    auto program = masm::parse(crcSource());
    for (auto _ : state) {
        auto result = masm::assemble(program, masm::LayoutSpec{});
        benchmark::DoNotOptimize(result.image.entry);
    }
}

void
BM_Parse(benchmark::State &state)
{
    std::string source = crcSource();
    for (auto _ : state) {
        auto program = masm::parse(source);
        benchmark::DoNotOptimize(program.stmts.size());
    }
}

void
BM_SwapRamBuild(benchmark::State &state)
{
    auto program = masm::parse(crcSource());
    for (auto _ : state) {
        auto info = cache::build(program, masm::LayoutSpec{}, {});
        benchmark::DoNotOptimize(info.reloc_count);
    }
}

void
BM_BlockCacheBuild(benchmark::State &state)
{
    auto program = masm::parse(crcSource());
    for (auto _ : state) {
        auto info = bb::build(program, masm::LayoutSpec{}, {});
        benchmark::DoNotOptimize(info.n_blocks);
    }
}

BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputNoPredecode)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorThroughputTraced)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Parse)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Assemble)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SwapRamBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BlockCacheBuild)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
