/**
 * @file
 * Reproduces Table 1: binary size, RAM usage, and the code/data access
 * ratio for the nine benchmarks, measured on the baseline system in the
 * unified-memory configuration.
 *
 * Paper reference values: binary sizes 1470-23014 B (ours are smaller —
 * inputs and code are scaled to simulation budgets), RAM usage
 * 332-10794 B, code/data ratios 1.6-4.7 with average 3.035.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

int
main()
{
    std::printf("Table 1: benchmark footprint and access mix "
                "(baseline, unified memory)\n\n");
    harness::Table table({"Benchmark", "Binary Size (B)", "RAM Usage (B)",
                          "Code/Data Access Ratio"});
    double ratio_sum = 0;
    int count = 0;
    for (const auto &w : workloads::all()) {
        auto m = bench::run(w, harness::System::Baseline);
        bench::requireCorrect(m, w, "table1 baseline");
        std::uint32_t binary =
            m.text_bytes + m.const_bytes + m.data_bytes;
        double ratio =
            static_cast<double>(m.stats.code_space_accesses) /
            static_cast<double>(m.stats.data_space_accesses);
        ratio_sum += ratio;
        ++count;
        table.addRow({w.display, std::to_string(binary),
                      std::to_string(m.ram_bytes),
                      support::fixed(ratio, 3)});
    }
    table.addRow({"Average", "", "",
                  support::fixed(ratio_sum / count, 3)});
    std::printf("%s\n", table.text().c_str());
    std::printf("Paper: ratios 1.620-4.679, average 3.035 — code-space "
                "accesses dominate,\nwhich is the motivation for caching "
                "instructions rather than data (S2.4).\n");
    return 0;
}
