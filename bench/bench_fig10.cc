/**
 * @file
 * Reproduces Figure 10 (§5.5): split-SRAM execution. The four
 * benchmarks whose program memory fits in SRAM (CRC, AES, bitcount,
 * RSA in the paper) run with data+stack in low SRAM and the code cache
 * in the remainder, compared against the standard FRAM-code /
 * SRAM-data configuration.
 *
 * Paper reference: SwapRAM gains 22% speed and -26% energy over the
 * standard configuration at 24 MHz (8% / -21% at 8 MHz); the block
 * cache at best matches standard and loses badly on AES.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

int
main()
{
    const char *names[] = {"crc", "aes", "bitcount", "rsa"};
    for (std::uint32_t clock : {24'000'000u, 8'000'000u}) {
        std::printf("--- Figure 10 at %u MHz: split SRAM vs the "
                    "standard configuration ---\n",
                    clock / 1'000'000);
        harness::Table table({"Benchmark", "standard cyc", "SR split cyc",
                              "SR speedup", "SR energy", "BB split cyc",
                              "BB speedup"});
        std::vector<double> sr_speed, sr_energy;
        for (const char *name : names) {
            const auto *w = workloads::find(name);
            auto std_cfg = bench::run(*w, harness::System::Baseline,
                                      harness::Placement::Standard,
                                      clock);
            auto swap = bench::run(*w, harness::System::SwapRam,
                                   harness::Placement::Split, clock);
            auto block = bench::run(*w, harness::System::BlockCache,
                                    harness::Placement::Split, clock);
            bench::requireCorrect(std_cfg, *w, "fig10 standard");
            bench::requireCorrect(swap, *w, "fig10 swapram");
            bench::requireCorrect(block, *w, "fig10 block");

            double std_cyc =
                static_cast<double>(std_cfg.stats.totalCycles());
            double sp = swap.fits
                ? std_cyc /
                      static_cast<double>(swap.stats.totalCycles())
                : 0;
            if (swap.fits) {
                sr_speed.push_back(sp);
                sr_energy.push_back(swap.energy_pj / std_cfg.energy_pj);
            }
            table.addRow(
                {w->display, harness::withCommas(std_cfg.stats.totalCycles()),
                 swap.fits
                     ? harness::withCommas(swap.stats.totalCycles())
                     : "DNF",
                 swap.fits ? bench::times(sp) : "-",
                 swap.fits ? harness::percentDelta(
                                 swap.energy_pj / std_cfg.energy_pj, 1.0)
                           : "-",
                 block.fits
                     ? harness::withCommas(block.stats.totalCycles())
                     : "DNF",
                 block.fits
                     ? bench::times(
                           std_cyc /
                           static_cast<double>(
                               block.stats.totalCycles()))
                     : "-"});
        }
        table.addRow({"Geo. mean", "", "",
                      bench::times(harness::geoMean(sr_speed)),
                      harness::geoMeanDelta(sr_energy), "", ""});
        std::printf("%s\n", table.text().c_str());
    }
    std::printf("Paper: SwapRAM split +22%% speed / -26%% energy at "
                "24 MHz; +8%% / -21%% at 8 MHz.\n");
    return 0;
}
