/**
 * @file
 * Reproduces Figure 8: dynamic instruction breakdown per benchmark —
 * application code fetched from FRAM vs SRAM, the cache runtime's miss
 * handler, and the copy loop — normalized to baseline (unified-memory)
 * execution, for SwapRAM and the block-based cache.
 *
 * Paper shape: SwapRAM executes most application instructions from
 * SRAM with <3% runtime contribution and 0-10%% total growth; block
 * caching avoids FRAM app execution entirely but grows the dynamic
 * instruction count by ~36% through runtime entries.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

namespace {

std::string
pctOf(std::uint64_t part, double whole)
{
    return support::fixed(100.0 * static_cast<double>(part) / whole, 1);
}

} // namespace

int
main()
{
    std::printf("Figure 8: dynamic instruction breakdown, %% of the "
                "baseline instruction count\n\n");
    for (auto system :
         {harness::System::SwapRam, harness::System::BlockCache}) {
        std::printf("--- %s ---\n",
                    harness::systemName(system).c_str());
        harness::Table table({"Benchmark", "app-FRAM %", "app-SRAM %",
                              "handler %", "memcpy %", "total %"});
        for (const auto &w : workloads::all()) {
            auto base = bench::run(w, harness::System::Baseline);
            auto m = bench::run(w, system);
            bench::requireCorrect(base, w, "fig8 baseline");
            bench::requireCorrect(m, w, "fig8");
            if (!m.fits) {
                table.addRow({w.display, "DNF", "", "", "", ""});
                continue;
            }
            double denom =
                static_cast<double>(base.stats.instructions);
            const auto &owners = m.stats.instr_by_owner;
            table.addRow(
                {w.display,
                 pctOf(owners[int(sim::CodeOwner::AppFram)], denom),
                 pctOf(owners[int(sim::CodeOwner::AppSram)], denom),
                 pctOf(owners[int(sim::CodeOwner::Handler)], denom),
                 pctOf(owners[int(sim::CodeOwner::Memcpy)], denom),
                 pctOf(m.stats.instructions, denom)});
        }
        std::printf("%s\n", table.text().c_str());
    }
    std::printf("Paper shape: SwapRAM: mostly app-SRAM, runtime <3%%, "
                "total 100-110%%;\nblock cache: app-FRAM ~0 but total "
                "~136%% from runtime entries.\n");
    return 0;
}
