/**
 * @file
 * Reproduces Figure 9 (and §5.4): end-to-end execution speed and
 * energy at 24 MHz for SwapRAM and block-based caching, normalized to
 * unified-memory baseline execution; plus the 8 MHz summary.
 *
 * Paper reference: SwapRAM +26% average speed (13-46% excluding AES)
 * and -24% energy at 24 MHz; +13% speed and -20% energy at 8 MHz.
 * Block caching degrades speed by 13% on average (marginal wins on RC4
 * and bitcount only) and costs +12% energy.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

int
main()
{
    for (std::uint32_t clock : {24'000'000u, 8'000'000u}) {
        std::printf("--- Figure 9 at %u MHz: normalized to unified "
                    "baseline ---\n", clock / 1'000'000);
        harness::Table table({"Benchmark", "SR speedup", "SR energy",
                              "BB speedup", "BB energy"});
        std::vector<double> sr_speed, sr_energy, bb_speed, bb_energy;
        for (const auto &w : workloads::all()) {
            auto base =
                bench::run(w, harness::System::Baseline,
                           harness::Placement::Unified, clock);
            auto swap = bench::run(w, harness::System::SwapRam,
                                   harness::Placement::Unified, clock);
            auto block =
                bench::run(w, harness::System::BlockCache,
                           harness::Placement::Unified, clock);
            bench::requireCorrect(base, w, "fig9 baseline");
            bench::requireCorrect(swap, w, "fig9 swapram");
            bench::requireCorrect(block, w, "fig9 block");

            double base_cyc =
                static_cast<double>(base.stats.totalCycles());
            double sr_sp =
                base_cyc / static_cast<double>(swap.stats.totalCycles());
            double sr_en = swap.energy_pj / base.energy_pj;
            sr_speed.push_back(sr_sp);
            sr_energy.push_back(sr_en);
            std::string bb_sp = "DNF", bb_en = "DNF";
            if (block.fits) {
                double sp = base_cyc /
                            static_cast<double>(
                                block.stats.totalCycles());
                double en = block.energy_pj / base.energy_pj;
                bb_speed.push_back(sp);
                bb_energy.push_back(en);
                bb_sp = bench::times(sp);
                bb_en = harness::percentDelta(en, 1.0);
            }
            table.addRow({w.display, bench::times(sr_sp),
                          harness::percentDelta(sr_en, 1.0), bb_sp,
                          bb_en});
        }
        table.addRow({"Geo. mean",
                      bench::times(harness::geoMean(sr_speed)),
                      harness::geoMeanDelta(sr_energy),
                      bench::times(harness::geoMean(bb_speed)),
                      harness::geoMeanDelta(bb_energy)});
        std::printf("%s\n", table.text().c_str());
    }
    std::printf("Paper: 24 MHz SwapRAM +26%% speed / -24%% energy "
                "(AES the outlier);\n8 MHz +13%% speed / -20%% energy. "
                "Block cache: -13%% speed / +12%% energy at 24 MHz,\n"
                "-21%% speed / +19%% energy at 8 MHz.\n");
    return 0;
}
