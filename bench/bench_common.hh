/**
 * @file
 * Shared helpers for the per-table/figure bench binaries.
 */

#ifndef SWAPRAM_BENCH_BENCH_COMMON_HH
#define SWAPRAM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/workload.hh"

namespace swapram::bench {

/** Run one workload/system/placement/clock combination. */
inline harness::Metrics
run(const workloads::Workload &w, harness::System system,
    harness::Placement placement = harness::Placement::Unified,
    std::uint32_t clock_hz = 24'000'000)
{
    return harness::run(w, system, placement, clock_hz);
}

/** Verify a run finished with the golden checksum; abort loudly if not
 *  (a bench must never report numbers from a wrong execution). */
inline void
requireCorrect(const harness::Metrics &m, const workloads::Workload &w,
               const char *what)
{
    if (!m.fits)
        return; // DNF rows are reported as such
    if (!m.done || m.checksum != w.expected) {
        std::fprintf(stderr,
                     "FATAL: %s on %s produced wrong result "
                     "(done=%d checksum=0x%04X expected=0x%04X)\n",
                     what, w.name.c_str(), m.done, m.checksum,
                     w.expected);
        std::abort();
    }
}

/** Ratio formatted like "1.26x". */
inline std::string
times(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
    return buf;
}

} // namespace swapram::bench

#endif // SWAPRAM_BENCH_BENCH_COMMON_HH
