/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  1. Replacement structure (§3.4): circular queue (least-recently
 *     cached) vs stack (most-recently cached) at several cache sizes —
 *     the paper argues the stack's MRU eviction is counterproductive.
 *  2. Cache-size sweep: speedup vs available SRAM.
 *  3. Blacklist (§3.1): excluding the hottest function from caching.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

int
main()
{
    // --- 1. Replacement policy under pressure ---
    std::printf("Ablation 1: circular queue vs stack replacement "
                "(24 MHz, unified)\n\n");
    harness::Table policy({"Benchmark", "Cache (B)", "queue cyc",
                           "stack cyc", "queue vs stack"});
    for (const char *name : {"aes", "fft", "dijkstra"}) {
        const auto *w = workloads::find(name);
        for (std::uint16_t size : {384, 512, 768, 1024}) {
            harness::RunSpec spec;
            spec.workload = w;
            spec.system = harness::System::SwapRam;
            spec.swap.cache_base = 0x2000;
            spec.swap.cache_end =
                static_cast<std::uint16_t>(0x2000 + size);
            spec.swap.policy = cache::Policy::CircularQueue;
            auto queue = harness::runOne(spec);
            spec.swap.policy = cache::Policy::Stack;
            auto stack = harness::runOne(spec);
            bench::requireCorrect(queue, *w, "ablation queue");
            bench::requireCorrect(stack, *w, "ablation stack");
            policy.addRow(
                {w->display, std::to_string(size),
                 harness::withCommas(queue.stats.totalCycles()),
                 harness::withCommas(stack.stats.totalCycles()),
                 bench::times(
                     static_cast<double>(stack.stats.totalCycles()) /
                     static_cast<double>(queue.stats.totalCycles()))});
        }
    }
    std::printf("%s\n", policy.text().c_str());

    // --- 2. Cache-size sweep ---
    std::printf("Ablation 2: SwapRAM speedup vs cache size (FFT, "
                "24 MHz)\n\n");
    const auto *fft = workloads::find("fft");
    auto base = bench::run(*fft, harness::System::Baseline);
    harness::Table sweep({"Cache (B)", "total cycles", "speedup",
                          "FRAM accesses"});
    for (std::uint16_t size :
         {256, 384, 512, 768, 1024, 2048, 3072, 4096}) {
        harness::RunSpec spec;
        spec.workload = fft;
        spec.system = harness::System::SwapRam;
        spec.swap.cache_base = 0x2000;
        spec.swap.cache_end = static_cast<std::uint16_t>(0x2000 + size);
        auto m = harness::runOne(spec);
        bench::requireCorrect(m, *fft, "ablation sweep");
        sweep.addRow(
            {std::to_string(size),
             harness::withCommas(m.stats.totalCycles()),
             bench::times(static_cast<double>(base.stats.totalCycles()) /
                          static_cast<double>(m.stats.totalCycles())),
             harness::withCommas(m.stats.framAccesses())});
    }
    std::printf("%s\n", sweep.text().c_str());

    // --- 3. Blacklist ---
    std::printf("Ablation 3: blacklisting the hot multiply helper "
                "(RSA, 24 MHz)\n\n");
    const auto *rsa = workloads::find("rsa");
    harness::Table bl({"Config", "total cycles", "FRAM accesses"});
    {
        auto m = bench::run(*rsa, harness::System::SwapRam);
        bl.addRow({"all functions cacheable",
                   harness::withCommas(m.stats.totalCycles()),
                   harness::withCommas(m.stats.framAccesses())});
        harness::RunSpec spec;
        spec.workload = rsa;
        spec.system = harness::System::SwapRam;
        spec.swap.blacklist = {"rsa_modmul"};
        auto m2 = harness::runOne(spec);
        bench::requireCorrect(m2, *rsa, "ablation blacklist");
        bl.addRow({"rsa_modmul blacklisted",
                   harness::withCommas(m2.stats.totalCycles()),
                   harness::withCommas(m2.stats.framAccesses())});
    }
    std::printf("%s\n", bl.text().c_str());
    std::printf("Expected: blacklisting the hottest function forfeits "
                "most of the win,\nshowing the runtime redirection is "
                "what moves execution into SRAM.\n\n");

    // --- 4. Thrash mitigation (the paper's §5.4 future-work idea) ---
    std::printf("Ablation 4: freeze-on-thrash extension (AES in a "
                "512 B cache, 24 MHz)\n\n");
    harness::Table fz({"Config", "total cycles", "handler instr",
                       "checksum ok"});
    const auto *aes = workloads::find("aes");
    for (int threshold : {0, 4}) {
        harness::RunSpec spec;
        spec.workload = aes;
        spec.system = harness::System::SwapRam;
        spec.swap.cache_base = 0x2000;
        spec.swap.cache_end = 0x2200;
        spec.swap.freeze_threshold = threshold;
        spec.swap.freeze_window = 48;
        auto m = harness::runOne(spec);
        bench::requireCorrect(m, *aes, "ablation freeze");
        fz.addRow({threshold ? "freeze after 4 aborts" : "paper baseline",
                   harness::withCommas(m.stats.totalCycles()),
                   harness::withCommas(m.stats.instr_by_owner[int(
                       sim::CodeOwner::Handler)]),
                   m.checksum == aes->expected ? "yes" : "NO"});
    }
    std::printf("%s\n", fz.text().c_str());
    std::printf("Freezing pauses eviction after repeated active-caller "
                "aborts (S3.3.3's\npathological case), trading SRAM "
                "residency for far fewer handler scans.\n");
    return 0;
}
