/**
 * @file
 * Reproduces Figure 7 (and the §5.2 size discussion): NVM usage of the
 * transformed application code, cache runtime, and metadata for the
 * block-based cache and SwapRAM.
 *
 * Paper reference: block caching grows total NVM usage by 368% on
 * average and four benchmarks (STR, DIJ, FFT, LZFX) do not fit the
 * 32 KiB device; SwapRAM grows binaries by 27% on average, with the
 * miss handler at 972-1844 bytes.
 *
 * Our workloads are scaled down for simulation speed, so absolute
 * sizes are smaller; besides the real 32 KiB platform bound we report
 * DNF against a proportionally scaled budget (8 KiB) to show where the
 * paper's DNFs would land at paper-scale binaries.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

namespace {
constexpr std::uint32_t kScaledBudget = 8 * 1024;
}

int
main()
{
    std::printf("Figure 7: NVM usage after transformation "
                "(application + runtime + metadata)\n\n");
    harness::Table table({"Benchmark", "Base app", "BB app", "BB runtime",
                          "BB metadata", "BB total", "BB fits(8K)",
                          "SR app", "SR runtime", "SR metadata",
                          "SR total", "SR vs base"});
    std::vector<double> bb_growth, sr_growth;
    int handler_min = 1 << 30, handler_max = 0;

    for (const auto &w : workloads::all()) {
        auto base = bench::run(w, harness::System::Baseline);
        auto block = bench::run(w, harness::System::BlockCache);
        auto swap = bench::run(w, harness::System::SwapRam);
        bench::requireCorrect(base, w, "fig7");

        std::uint32_t base_total = base.totalNvmBytes();
        std::uint32_t bb_total = block.totalNvmBytes();
        std::uint32_t sr_total = swap.totalNvmBytes();
        bb_growth.push_back(static_cast<double>(bb_total) / base_total);
        sr_growth.push_back(static_cast<double>(sr_total) / base_total);
        handler_min = std::min<int>(handler_min, swap.handler_bytes);
        handler_max = std::max<int>(handler_max, swap.handler_bytes);

        table.addRow(
            {w.display, std::to_string(base_total),
             std::to_string(block.app_text_bytes),
             std::to_string(block.runtime_bytes),
             std::to_string(block.metadata_bytes),
             std::to_string(bb_total),
             bb_total > kScaledBudget ? "DNF" : "yes",
             std::to_string(swap.app_text_bytes),
             std::to_string(swap.runtime_bytes),
             std::to_string(swap.metadata_bytes),
             std::to_string(sr_total),
             harness::percentDelta(sr_total, base_total)});
    }
    std::printf("%s\n", table.text().c_str());
    std::printf("Block-based NVM growth (geo mean): %s   "
                "SwapRAM growth (geo mean): %s\n",
                harness::geoMeanDelta(bb_growth).c_str(),
                harness::geoMeanDelta(sr_growth).c_str());
    std::printf("SwapRAM miss handler size: %d-%d bytes "
                "(paper: 972-1844).\n", handler_min, handler_max);
    std::printf("Paper: block caching +368%% NVM on average with 4 DNF; "
                "SwapRAM +27%% average.\n");
    return 0;
}
