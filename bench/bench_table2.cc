/**
 * @file
 * Reproduces Table 2: FRAM accesses and unstalled CPU cycles for the
 * baseline, block-based caching, and SwapRAM on every benchmark, with
 * geometric-mean deltas.
 *
 * Paper reference: SwapRAM removes 65% of FRAM accesses (range
 * -40..-81%) for a +6.9% geo-mean cycle increase (worst AES +24%);
 * block caching removes only 34% while adding +52% cycles, and four
 * benchmarks do not fit (DNF).
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

int
main()
{
    std::printf("Table 2: FRAM accesses and unstalled CPU cycles "
                "(unified memory, simulator counters)\n\n");

    harness::Table fram({"Benchmark", "Baseline", "Block-based", "",
                         "SwapRAM", ""});
    harness::Table cycles({"Benchmark", "Baseline", "Block-based", "",
                           "SwapRAM", ""});
    std::vector<double> bb_fram_ratio, sr_fram_ratio;
    std::vector<double> bb_cycle_ratio, sr_cycle_ratio;

    for (const auto &w : workloads::all()) {
        auto base = bench::run(w, harness::System::Baseline);
        auto block = bench::run(w, harness::System::BlockCache);
        auto swap = bench::run(w, harness::System::SwapRam);
        bench::requireCorrect(base, w, "table2 baseline");
        bench::requireCorrect(block, w, "table2 block");
        bench::requireCorrect(swap, w, "table2 swapram");

        auto base_fram = static_cast<double>(base.stats.framAccesses());
        auto base_cyc = static_cast<double>(base.stats.base_cycles);

        std::string bb_fram = "DNF", bb_fram_d = "";
        std::string bb_cyc = "DNF", bb_cyc_d = "";
        if (block.fits) {
            bb_fram = harness::withCommas(block.stats.framAccesses());
            bb_fram_d = harness::percentDelta(
                static_cast<double>(block.stats.framAccesses()),
                base_fram);
            bb_cyc = harness::withCommas(block.stats.base_cycles);
            bb_cyc_d = harness::percentDelta(
                static_cast<double>(block.stats.base_cycles), base_cyc);
            bb_fram_ratio.push_back(
                static_cast<double>(block.stats.framAccesses()) /
                base_fram);
            bb_cycle_ratio.push_back(
                static_cast<double>(block.stats.base_cycles) / base_cyc);
        }
        sr_fram_ratio.push_back(
            static_cast<double>(swap.stats.framAccesses()) / base_fram);
        sr_cycle_ratio.push_back(
            static_cast<double>(swap.stats.base_cycles) / base_cyc);

        fram.addRow({w.display, harness::withCommas(
                                    base.stats.framAccesses()),
                     bb_fram, bb_fram_d,
                     harness::withCommas(swap.stats.framAccesses()),
                     harness::percentDelta(
                         static_cast<double>(swap.stats.framAccesses()),
                         base_fram)});
        cycles.addRow({w.display,
                       harness::withCommas(base.stats.base_cycles),
                       bb_cyc, bb_cyc_d,
                       harness::withCommas(swap.stats.base_cycles),
                       harness::percentDelta(
                           static_cast<double>(swap.stats.base_cycles),
                           base_cyc)});
    }
    fram.addRow({"Geo. mean", "", "",
                 harness::geoMeanDelta(bb_fram_ratio), "",
                 harness::geoMeanDelta(sr_fram_ratio)});
    cycles.addRow({"Geo. mean", "", "",
                   harness::geoMeanDelta(bb_cycle_ratio), "",
                   harness::geoMeanDelta(sr_cycle_ratio)});

    std::printf("FRAM accesses:\n%s\n", fram.text().c_str());
    std::printf("Unstalled CPU cycles:\n%s\n", cycles.text().c_str());
    std::printf("Paper: SwapRAM -65%% FRAM accesses at +6.9%% cycles "
                "(worst AES +24%%);\nblock-based -34%% at +52%% "
                "cycles.\n");
    return 0;
}
