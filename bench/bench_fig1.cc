/**
 * @file
 * Reproduces Figure 1: runtime and energy of the arithmetic kernel
 * under the four code/data placements (FRAM/FRAM unified, FRAM code +
 * SRAM data standard, SRAM code + FRAM data, SRAM/SRAM), at 8 and
 * 24 MHz.
 *
 * Paper shape: unified (FRAM/FRAM) is worst even at 8 MHz because of
 * hardware-cache contention; placing code in SRAM beats placing data in
 * SRAM (instruction fetches dominate); SRAM/SRAM is the upper bound.
 */

#include "bench_common.hh"
#include "support/strings.hh"

using namespace swapram;

int
main()
{
    auto w = workloads::makeArith();
    std::printf("Figure 1: code/data placement vs runtime and energy "
                "(arithmetic kernel)\n\n");

    struct Config {
        const char *label;
        harness::Placement placement;
    };
    const Config configs[] = {
        {"code FRAM / data FRAM (unified)", harness::Placement::Unified},
        {"code FRAM / data SRAM (standard)",
         harness::Placement::Standard},
        {"code SRAM / data FRAM", harness::Placement::SramCode},
        {"code SRAM / data SRAM", harness::Placement::SramAll},
    };

    for (std::uint32_t clock : {24'000'000u, 8'000'000u}) {
        std::printf("--- %u MHz ---\n", clock / 1'000'000);
        harness::Table table({"Placement", "Cycles", "Runtime (ms)",
                              "Energy (uJ)", "vs unified"});
        double unified_cycles = 0;
        for (const Config &cfg : configs) {
            auto m = bench::run(w, harness::System::Baseline,
                                cfg.placement, clock);
            bench::requireCorrect(m, w, "fig1");
            if (cfg.placement == harness::Placement::Unified)
                unified_cycles =
                    static_cast<double>(m.stats.totalCycles());
            table.addRow(
                {cfg.label,
                 harness::withCommas(m.stats.totalCycles()),
                 support::fixed(m.seconds * 1e3, 3),
                 support::fixed(m.energy_pj / 1e6, 1),
                 bench::times(unified_cycles /
                              static_cast<double>(
                                  m.stats.totalCycles()))});
        }
        std::printf("%s\n", table.text().c_str());
    }
    std::printf("Expected shape (paper Figure 1): unified is slowest "
                "even at 8 MHz (cache\ncontention); code-in-SRAM beats "
                "data-in-SRAM; SRAM/SRAM is the bound.\n");
    return 0;
}
